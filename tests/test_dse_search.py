"""Tests for the search drivers and the vectorized Pareto kernel."""

import json
import random

import pytest

from repro.dse import (
    Axis,
    Constraint,
    DesignSpace,
    Explorer,
    Objective,
    frontier_2d,
    pareto_frontier,
)
from repro.dse.pareto import pareto_frontier_reference, pareto_numpy
from repro.dse.search import (
    STRATEGIES,
    GaConfig,
    GeneticSearch,
    SuccessiveHalving,
    is_rankable,
    rank_rows,
    run_proxy,
)
from repro.dse.studies import explore_pod_40nm, explore_pod_scale
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor

OBJECTIVES_3 = (
    Objective.maximize("a"),
    Objective.maximize("b"),
    Objective.minimize("c"),
)


def random_rows(count, seed, groups=("x", "y"), duplicate_every=7):
    """Seeded random metric rows with deliberate exact-duplicate injections."""
    rng = random.Random(seed)
    rows = []
    for index in range(count):
        if duplicate_every and index % duplicate_every == duplicate_every - 1 and rows:
            donor = rng.choice(rows)
            rows.append({**donor, "g": rng.choice(groups)})
        else:
            rows.append(
                {
                    "g": rng.choice(groups),
                    "a": rng.random(),
                    "b": rng.random(),
                    "c": rng.random(),
                }
            )
    return rows


def chip_space(**overrides):
    axes = {
        "core_type": ("ooo", "inorder"),
        "cores_per_pod": (8, 16, 32),
        "llc_per_pod_mb": (2.0, 4.0),
        "pods_per_chip": (1, 2, 3),
        "node": ("40nm",),
        "interconnect": ("crossbar",),
    }
    axes.update(overrides)
    return DesignSpace(axes=tuple(Axis(k, v) for k, v in axes.items()))


def chip_explorer(space=None, **kwargs):
    kwargs.setdefault("cache", ResultCache())
    return Explorer(
        space or chip_space(),
        objectives=(
            Objective.maximize("performance_density"),
            Objective.maximize("performance_per_watt"),
        ),
        group_by="core_type",
        **kwargs,
    )


# ------------------------------------------------------------- pareto kernel
class TestParetoKernelEquivalence:
    def assert_equivalent(self, rows, objectives, group_by=None):
        fast = pareto_frontier(rows, objectives, group_by, method="numpy")
        slow = pareto_frontier_reference(rows, objectives, group_by)
        assert [id(r) for r in fast] == [id(r) for r in slow]

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("count", (0, 1, 2, 3, 17, 200))
    def test_matches_reference_on_random_data(self, seed, count):
        rows = random_rows(count, seed)
        self.assert_equivalent(rows, OBJECTIVES_3)
        self.assert_equivalent(rows, OBJECTIVES_3, group_by="g")

    def test_single_objective(self):
        rows = random_rows(50, seed=9)
        self.assert_equivalent(rows, (Objective.minimize("c"),))

    def test_exact_duplicates_all_survive(self):
        rows = [{"a": 1.0, "b": 2.0, "c": 3.0} for _ in range(4)]
        frontier = pareto_frontier(rows, OBJECTIVES_3, method="numpy")
        assert len(frontier) == 4
        self.assert_equivalent(rows, OBJECTIVES_3)

    def test_degenerate_objective_contributes_nothing(self):
        rows = [{"a": 1.0, "b": float(i), "c": 0.0} for i in range(6)]
        frontier = pareto_frontier(rows, OBJECTIVES_3, method="numpy")
        assert frontier == [rows[-1]]
        self.assert_equivalent(rows, OBJECTIVES_3)

    def test_every_group_size_one(self):
        rows = [{"g": str(i), "a": float(i), "b": 0.0, "c": 0.0} for i in range(5)]
        frontier = pareto_frontier(rows, OBJECTIVES_3, group_by="g", method="numpy")
        assert len(frontier) == 5
        self.assert_equivalent(rows, OBJECTIVES_3, group_by="g")

    def test_pareto_numpy_alias(self):
        rows = random_rows(40, seed=2)
        assert pareto_numpy(rows, OBJECTIVES_3, group_by="g") == pareto_frontier(
            rows, OBJECTIVES_3, group_by="g", method="numpy"
        )

    def test_preserves_input_order(self):
        rows = random_rows(120, seed=4)
        frontier = pareto_frontier(rows, OBJECTIVES_3, method="numpy")
        by_identity = {id(row): position for position, row in enumerate(rows)}
        positions = [by_identity[id(row)] for row in frontier]
        assert positions == sorted(positions)

    def test_zero_objectives_rejected(self):
        with pytest.raises(ValueError, match="at least one objective"):
            pareto_frontier([{"a": 1.0}], (), method="numpy")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            pareto_frontier([{"a": 1.0}], (Objective.maximize("a"),), method="magic")

    def test_numpy_method_rejects_non_finite(self):
        rows = [{"a": 1.0}, {"a": float("nan")}]
        with pytest.raises(ValueError, match="non-finite"):
            pareto_frontier(rows, (Objective.maximize("a"),), method="numpy")

    def test_auto_method_falls_back_on_non_finite(self):
        rows = [{"a": 1.0}, {"a": float("nan")}]
        auto = pareto_frontier(rows, (Objective.maximize("a"),))
        assert auto == pareto_frontier_reference(rows, (Objective.maximize("a"),))


class TestFrontier2dGuards:
    def test_missing_metric_names_metric_and_row(self):
        rows = [{"a": 1.0, "b": 2.0}, {"b": 3.0}]
        with pytest.raises(KeyError, match=r"row 1 has no 'a' metric"):
            frontier_2d(rows, x=Objective.minimize("a"), y=Objective.minimize("b"))

    def test_uncastable_value_names_metric_and_row(self):
        rows = [{"a": 1.0, "b": 2.0}, {"a": None, "b": 3.0}]
        with pytest.raises(TypeError, match=r"row 1 metric 'a' value None"):
            frontier_2d(rows, x=Objective.minimize("a"), y=Objective.minimize("b"))

    def test_valid_input_sorted_by_x(self):
        rows = [{"a": 3.0, "b": 1.0}, {"a": 1.0, "b": 3.0}, {"a": 2.0, "b": 2.0}]
        frontier = frontier_2d(rows, x=Objective.minimize("a"), y=Objective.minimize("b"))
        assert [r["a"] for r in frontier] == [1.0, 2.0, 3.0]


# ---------------------------------------------------------- streaming sample
class TestStreamingSample:
    def space(self):
        return DesignSpace(
            axes=(
                Axis("a", tuple(range(10))),
                Axis("b", ("x", "y", "z")),
                Axis("c", (1.0, 2.0)),
            ),
            constraints=(
                Constraint("no_a7_z", lambda p: not (p["a"] == 7 and p["b"] == "z")),
            ),
        )

    def test_feasible_count_matches_enumeration(self):
        space = self.space()
        assert space.feasible_count() == len(space.enumerate()) == 58

    def test_sample_picks_are_pinned(self):
        # Regression pin: the streaming rewrite must reproduce the picks the
        # materialized implementation made for these seeds.
        space = self.space()
        assert space.sample(5, seed=7) == [
            {"a": 0, "b": "y", "c": 2.0},
            {"a": 1, "b": "y", "c": 2.0},
            {"a": 3, "b": "y", "c": 1.0},
            {"a": 4, "b": "x", "c": 2.0},
            {"a": 6, "b": "z", "c": 2.0},
        ]
        assert space.sample(3, seed=0) == [
            {"a": 4, "b": "x", "c": 1.0},
            {"a": 8, "b": "y", "c": 1.0},
            {"a": 9, "b": "y", "c": 1.0},
        ]

    def test_single_axis_sample_pinned(self):
        space = DesignSpace(axes=(Axis("a", tuple(range(50))),))
        picks = [c["a"] for c in space.sample(10, seed=3)]
        assert picks == [4, 8, 15, 23, 30, 34, 37, 38, 40, 48]

    def test_oversized_sample_returns_everything(self):
        space = self.space()
        assert space.sample(1000, seed=0) == space.enumerate()

    def test_sample_preserves_enumeration_order(self):
        space = self.space()
        order = {json.dumps(c, sort_keys=True): i for i, c in enumerate(space.enumerate())}
        picks = [order[json.dumps(c, sort_keys=True)] for c in space.sample(20, seed=11)]
        assert picks == sorted(picks)


# ------------------------------------------------------------------- ranking
class TestRanking:
    def test_is_rankable_rejects_missing_and_non_finite(self):
        objectives = (Objective.maximize("a"),)
        assert is_rankable({"a": 1.0}, objectives, ())
        assert not is_rankable({"b": 1.0}, objectives, ())
        assert not is_rankable({"a": float("nan")}, objectives, ())
        never = Constraint("never", lambda m: False)
        assert not is_rankable({"a": 1.0}, objectives, (never,))

    def test_rank_orders_frontier_before_dominated(self):
        rows = [{"a": 1.0}, {"a": 3.0}, {"a": 2.0}]
        fitness = rank_rows(rows, (Objective.maximize("a"),), None)
        assert fitness[1] < fitness[2] < fitness[0]

    def test_infeasible_rows_rank_last(self):
        rows = [{"a": 5.0, "ok": False}, {"a": 1.0, "ok": True}]
        ok = Constraint("ok", lambda m: bool(m["ok"]))
        fitness = rank_rows(rows, (Objective.maximize("a"),), None, (ok,))
        assert fitness[1] < fitness[0]


# ------------------------------------------------------------------- proxies
class TestProxies:
    def test_chip_proxy_reports_objective_metrics(self):
        params = {
            "core_type": "ooo",
            "cores_per_pod": 16,
            "llc_per_pod_mb": 4.0,
            "pods_per_chip": 2,
            "node": "40nm",
            "interconnect": "crossbar",
        }
        metrics = run_proxy("chip", params, fidelity=1)
        for key in ("performance", "performance_density", "performance_per_watt"):
            assert metrics[key] > 0
        assert isinstance(metrics["fits_budgets"], bool)

    def test_fidelity_changes_the_estimate_but_not_feasibility_keys(self):
        params = {
            "core_type": "inorder",
            "cores_per_pod": 32,
            "llc_per_pod_mb": 2.0,
            "pods_per_chip": 3,
            "node": "40nm",
            "interconnect": "crossbar",
        }
        low = run_proxy("chip", params, fidelity=1)
        high = run_proxy("chip", params, fidelity=100)
        assert set(low) == set(high)

    def test_unknown_proxy_rejected(self):
        with pytest.raises(KeyError):
            run_proxy("nope", {}, fidelity=1)


# ------------------------------------------------------------------ searches
class TestGeneticSearch:
    def test_same_seed_same_budget_identical_payload(self):
        results = [
            chip_explorer().explore(strategy="ga", budget=20, seed=5) for _ in range(2)
        ]
        assert results[0].rows == results[1].rows
        assert results[0].frontier == results[1].frontier
        assert results[0].knees == results[1].knees

    def test_different_seeds_walk_different_candidates(self):
        a = chip_explorer().explore(strategy="ga", budget=20, seed=0)
        b = chip_explorer().explore(strategy="ga", budget=20, seed=1)
        assert [r["candidate"] for r in a.rows] != [r["candidate"] for r in b.rows]

    def test_budget_bounds_unique_evaluations(self):
        result = chip_explorer().explore(strategy="ga", budget=13, seed=2)
        assert len(result.rows) <= 13
        labels = [row["candidate"] for row in result.rows]
        assert len(labels) == len(set(labels))

    def test_serial_and_parallel_identical(self):
        cache = ResultCache()
        serial = chip_explorer(
            executor=SweepExecutor(mode="serial"), cache=cache
        ).explore(strategy="ga", budget=16, seed=3)
        parallel = chip_explorer(
            executor=SweepExecutor(mode="process", max_workers=2), cache=ResultCache()
        ).explore(strategy="ga", budget=16, seed=3)
        assert json.dumps(serial.payload(), sort_keys=True) == json.dumps(
            parallel.payload(), sort_keys=True
        )

    def test_warm_cache_rerun_is_identical_with_zero_evaluations(self):
        cache = ResultCache()
        cold = chip_explorer(cache=cache).explore(strategy="ga", budget=16, seed=0)
        warm = chip_explorer(cache=cache).explore(strategy="ga", budget=16, seed=0)
        assert warm.stats["evaluated"] == 0
        assert warm.stats["cache_hits"] == len(warm.rows)
        cold_payload, warm_payload = cold.payload(), warm.payload()
        cold_payload.pop("stats"), warm_payload.pop("stats")
        assert warm_payload == cold_payload

    def test_stats_carry_strategy_and_budget(self):
        result = chip_explorer().explore(strategy="ga", budget=12, seed=1)
        assert result.stats["strategy"] == "ga"
        assert result.stats["budget"] == 12
        assert result.stats["seed"] == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GaConfig(population_size=0)
        with pytest.raises(ValueError):
            GaConfig(elite=10, population_size=4)
        with pytest.raises(ValueError):
            GaConfig(mutation_rate=1.5)

    def test_driver_rejects_bad_budget(self):
        with pytest.raises(ValueError, match="budget"):
            GeneticSearch(chip_explorer(), budget=0)


class TestSuccessiveHalving:
    def test_same_seed_identical_and_within_budget(self):
        results = [
            chip_explorer().explore(strategy="halving", budget=15, seed=4)
            for _ in range(2)
        ]
        assert results[0].rows == results[1].rows
        assert results[0].knees == results[1].knees
        assert len(results[0].rows) <= 15

    def test_serial_and_parallel_identical(self):
        serial = chip_explorer(executor=SweepExecutor(mode="serial")).explore(
            strategy="halving", budget=12, seed=0
        )
        parallel = chip_explorer(
            executor=SweepExecutor(mode="process", max_workers=2)
        ).explore(strategy="halving", budget=12, seed=0)
        assert json.dumps(serial.payload(), sort_keys=True) == json.dumps(
            parallel.payload(), sort_keys=True
        )

    def test_stats_record_pool_and_rungs(self):
        result = chip_explorer().explore(strategy="halving", budget=10, seed=0)
        assert result.stats["strategy"] == "halving"
        assert result.stats["pool"] >= 10
        assert result.stats["proxy_evaluations"] >= result.stats["pool"]

    def test_keeps_both_frontier_groups(self):
        result = chip_explorer().explore(strategy="halving", budget=10, seed=0)
        assert {row["core_type"] for row in result.rows} == {"ooo", "inorder"}

    def test_driver_rejects_bad_eta_and_pool(self):
        with pytest.raises(ValueError, match="eta"):
            SuccessiveHalving(chip_explorer(), budget=8, eta=1)
        with pytest.raises(ValueError, match="pool_size"):
            SuccessiveHalving(chip_explorer(), budget=8, pool_size=4)


class TestExplorerStrategyDispatch:
    def test_strategy_names(self):
        assert STRATEGIES == ("exhaustive", "ga", "halving")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            chip_explorer().explore(strategy="annealing")

    def test_budget_rejected_for_exhaustive(self):
        with pytest.raises(ValueError, match="budget"):
            chip_explorer().explore(budget=10)

    def test_exhaustive_stats_tagged(self):
        result = chip_explorer().explore()
        assert result.stats["strategy"] == "exhaustive"


# ------------------------------------------------------------------- studies
class TestSearchStudies:
    def test_ga_recovers_exhaustive_knees_within_quarter_budget(self):
        exhaustive = explore_pod_40nm(use_evaluation_cache=False)
        searched = explore_pod_40nm(
            strategy="ga", budget=48, seed=0, use_evaluation_cache=False
        )
        space_size = exhaustive["stats"]["space_size"]
        assert searched["stats"]["candidates"] <= space_size // 4
        assert {k: v["candidate"] for k, v in searched["knees"].items()} == {
            k: v["candidate"] for k, v in exhaustive["knees"].items()
        }

    def test_halving_recovers_exhaustive_knees_within_quarter_budget(self):
        exhaustive = explore_pod_40nm(use_evaluation_cache=False)
        searched = explore_pod_40nm(
            strategy="halving", budget=48, seed=0, use_evaluation_cache=False
        )
        assert searched["stats"]["candidates"] <= exhaustive["stats"]["space_size"] // 4
        assert {k: v["candidate"] for k, v in searched["knees"].items()} == {
            k: v["candidate"] for k, v in exhaustive["knees"].items()
        }

    def test_pod_scale_space_exceeds_100k_and_rejects_exhaustive(self):
        with pytest.raises(ValueError, match="exhaustive") as excinfo:
            explore_pod_scale(strategy="exhaustive")
        assert "110592" in str(excinfo.value)

    def test_pod_scale_runs_under_a_search_budget(self):
        payload = explore_pod_scale(
            strategy="halving", budget=12, seed=0, use_evaluation_cache=False
        )
        assert payload["stats"]["space_size"] >= 100_000
        assert payload["stats"]["candidates"] <= 12
        assert payload["knees"]
