"""Unit, statistical, and regression tests for the fleet layer.

Covers the pieces of ``src/repro/fleet/`` individually -- geography, load
shapes, routing, traffic generation (with statistical validation against
analytic rates and pinned-seed regression vectors), histograms, autoscaling
guard rails -- plus the chapter-10 studies' row contracts.  The cross-engine
bit-identity properties live in ``tests/test_fleet_equivalence.py``.
"""

import math

import numpy as np
import pytest

from repro.fleet import (
    DIURNAL_24,
    FLASH_CROWD_24,
    Autoscaler,
    Datacenter,
    EpochObservation,
    FleetConfig,
    FleetSimulation,
    LatencyHistogram,
    LoadShape,
    Region,
    RequestClass,
    StaticPolicy,
    TargetUtilizationPolicy,
    latency_rank,
    make_policy,
    network_latency_s,
    route_demand,
    routing_seed,
)
from repro.fleet.traffic import (
    chunk_rng,
    generate_chunk,
    mmpp_arrival_times,
    poisson_arrival_times,
    service_times,
)
from repro.service.arrivals import MmppArrivals


def _datacenter(name="east", x=0.0, y=0.0, servers=3, **kwargs):
    defaults = dict(parallelism=2, service_mean_s=0.01, policy="jsq")
    defaults.update(kwargs)
    return Datacenter(name, Region(name, x, y), num_servers=servers, **defaults)


# ------------------------------------------------------------------- geo


class TestGeo:
    """Regions, distances, and the network latency model."""

    def test_same_region_is_free(self):
        region = Region("east", 1.0, 2.0)
        assert network_latency_s(region, region) == 0.0

    def test_latency_grows_with_distance(self):
        origin = Region("o", 0.0, 0.0)
        near = Region("near", 1.0, 0.0)
        far = Region("far", 3.0, 4.0)
        assert 0.0 < network_latency_s(origin, near) < network_latency_s(origin, far)

    def test_capacity_and_validation(self):
        dc = _datacenter(servers=4)
        assert dc.capacity_qps() == pytest.approx(4 * 2 / 0.01)
        assert dc.capacity_qps(servers=1) == pytest.approx(200.0)
        with pytest.raises(ValueError):
            Datacenter("bad", Region("bad"), num_servers=0, parallelism=1,
                       service_mean_s=0.01)
        with pytest.raises(ValueError):
            Datacenter("bad", Region("bad"), num_servers=2, parallelism=1,
                       service_mean_s=0.01, min_servers=3)


# ------------------------------------------------------------- load shapes


class TestLoadShape:
    """Trace normalization, lookup semantics, and the bundled shapes."""

    def test_from_trace_normalizes_to_unit_mean(self):
        shape = LoadShape.from_trace((2.0, 4.0, 6.0), epoch_s=10.0)
        assert sum(shape.multipliers) / 3 == pytest.approx(1.0)
        assert shape.multiplier(2) == pytest.approx(1.5)

    def test_empty_shape_is_flat(self):
        shape = LoadShape()
        assert shape.num_epochs == 0
        assert shape.multiplier(0) == 1.0
        assert shape.multiplier(99) == 1.0

    def test_multiplier_beyond_trace_is_one(self):
        shape = LoadShape.from_trace((1.0, 3.0))
        assert shape.multiplier(17) == 1.0

    def test_diurnal_peak_and_trough(self):
        assert DIURNAL_24.num_epochs == 24
        assert DIURNAL_24.peak_epoch == 14
        assert DIURNAL_24.trough_epoch == 2
        assert DIURNAL_24.multiplier(14) == pytest.approx(1.75, rel=1e-6)
        assert sum(DIURNAL_24.multipliers) / 24 == pytest.approx(1.0)

    def test_flash_crowd_spikes(self):
        peak = FLASH_CROWD_24.multiplier(FLASH_CROWD_24.peak_epoch)
        assert peak > 2.0
        assert sum(FLASH_CROWD_24.multipliers) / 24 == pytest.approx(1.0)


# ----------------------------------------------------------------- routing


class TestRouting:
    """Fluid demand splitting under the three geo-routing policies."""

    def setup_method(self):
        self.datacenters = (
            _datacenter("east", 0.0, 0.0),
            _datacenter("mid", 1.0, 0.0),
            _datacenter("west", 2.0, 0.0),
        )
        self.capacities = [dc.capacity_qps() for dc in self.datacenters]

    def test_latency_rank_orders_by_distance(self):
        assert latency_rank(Region("east"), self.datacenters) == [0, 1, 2]
        assert latency_rank(Region("west", 2.0, 0.0), self.datacenters) == [2, 1, 0]

    def test_nearest_sends_everything_home(self):
        allocated = [0.0, 0.0, 0.0]
        shares = route_demand(
            "nearest", Region("east"), 100.0, self.datacenters,
            self.capacities, allocated,
        )
        assert shares == [(0, 100.0)]
        assert allocated == [100.0, 0.0, 0.0]

    def test_latency_weighted_prefers_closer_sites(self):
        allocated = [0.0, 0.0, 0.0]
        shares = dict(
            route_demand(
                "latency_weighted", Region("east"), 100.0, self.datacenters,
                self.capacities, allocated,
            )
        )
        assert shares[0] > shares[1] > shares[2]
        assert sum(shares.values()) == pytest.approx(100.0)

    def test_spillover_overflows_past_threshold(self):
        demand = 0.9 * self.capacities[0]
        allocated = [0.0, 0.0, 0.0]
        shares = dict(
            route_demand(
                "spillover", Region("east"), demand, self.datacenters,
                self.capacities, allocated, spill_threshold=0.75,
            )
        )
        assert shares[0] == pytest.approx(0.75 * self.capacities[0])
        assert shares[1] == pytest.approx(demand - shares[0])
        assert 2 not in shares

    def test_spillover_last_site_absorbs_everything(self):
        demand = 10 * sum(self.capacities)
        allocated = [0.0, 0.0, 0.0]
        shares = dict(
            route_demand(
                "spillover", Region("east"), demand, self.datacenters,
                self.capacities, allocated,
            )
        )
        assert sum(shares.values()) == pytest.approx(demand)
        assert shares[2] > shares[0]

    def test_request_class_validation(self):
        with pytest.raises(ValueError):
            RequestClass("bad", fraction=0.0)
        with pytest.raises(ValueError):
            RequestClass("bad", fraction=0.5, service_scale=-1.0)


# ----------------------------------------------------------------- traffic


class TestTrafficStatistics:
    """Empirical rates of the vectorized generators match analytics."""

    def test_poisson_count_matches_rate(self):
        """Pooled over many chunks, the empirical rate lands within a few
        standard errors of the configured one."""
        rate, duration, chunks = 50.0, 10.0, 40
        counts = [
            poisson_arrival_times(chunk_rng(3, e, 0, 0, 0, 0), rate, duration).size
            for e in range(chunks)
        ]
        total = sum(counts)
        expected = rate * duration * chunks
        assert abs(total - expected) < 4 * math.sqrt(expected)

    def test_poisson_uniform_conditional_law(self):
        """Conditioned on the count, arrival instants are uniform on the
        epoch: the empirical mean sits near duration/2."""
        times = poisson_arrival_times(chunk_rng(5, 0, 0, 0, 0, 0), 2_000.0, 10.0)
        assert times.size > 1_000
        assert abs(float(times.mean()) - 5.0) < 0.2
        assert float(times.min()) >= 0.0 and float(times.max()) < 10.0
        assert np.all(np.diff(times) >= 0.0)

    def test_mmpp_mean_rate_matches_configuration(self):
        """The time-warped MMPP keeps the configured long-run mean rate."""
        process = MmppArrivals(
            rate_rps=80.0, burstiness=5.0, burst_fraction=0.25, mean_phase_s=0.5
        )
        duration, chunks = 20.0, 30
        total = sum(
            mmpp_arrival_times(chunk_rng(11, e, 0, 0, 0, 0), process, duration).size
            for e in range(chunks)
        )
        expected = process.rate_rps * duration * chunks
        assert abs(total - expected) / expected < 0.05

    def test_mmpp_is_burstier_than_poisson(self):
        """Windowed counts of the MMPP overdisperse relative to Poisson:
        variance-to-mean well above 1 for the modulated stream."""
        process = MmppArrivals(
            rate_rps=200.0, burstiness=8.0, burst_fraction=0.15, mean_phase_s=1.0
        )
        times = mmpp_arrival_times(chunk_rng(13, 0, 0, 0, 0, 0), process, 60.0)
        windows = np.histogram(times, bins=np.arange(0.0, 60.5, 0.5))[0]
        dispersion = float(windows.var()) / float(windows.mean())
        assert dispersion > 2.0

    def test_service_time_means(self):
        rng = chunk_rng(17, 0, 0, 0, 0, 1)
        exp = service_times(rng, "exponential", 0.02, 50_000)
        assert float(exp.mean()) == pytest.approx(0.02, rel=0.05)
        det = service_times(rng, "deterministic", 0.02, 10)
        assert np.all(det == 0.02)
        with pytest.raises(ValueError):
            service_times(rng, "pareto", 0.02, 10)


class TestTrafficRegressionVectors:
    """Pinned-seed vectors freeze the generator streams against RNG drift."""

    def test_poisson_vector(self):
        times = poisson_arrival_times(chunk_rng(7, 2, 1, 0, 0, 0), 5.0, 4.0)
        assert times.size == 18
        assert times[:5].tolist() == [
            0.11537636155533981, 0.5287030465606044, 0.6443057696102161,
            0.6579819221532568, 0.6645733244510623,
        ]

    def test_mmpp_vector(self):
        process = MmppArrivals(
            rate_rps=6.0, burstiness=4.0, burst_fraction=0.2, mean_phase_s=1.0
        )
        times = mmpp_arrival_times(chunk_rng(7, 2, 1, 0, 0, 0), process, 4.0)
        assert times.size == 42
        assert times[:5].tolist() == [
            0.041099576132181494, 0.322913308817391, 0.3281970303622831,
            0.3828154668495689, 0.5058861188810286,
        ]

    def test_service_vector(self):
        values = service_times(chunk_rng(7, 2, 1, 0, 0, 1), "exponential", 0.01, 4)
        assert values.tolist() == [
            0.006151809168205258, 0.003922689768713194,
            0.01389441549625162, 0.013773271280528972,
        ]

    def test_routing_seed_vector(self):
        assert routing_seed(7, 2, 1) == 6542025431983499246

    def test_streams_are_independent_of_generation_order(self):
        """Chunk RNGs key on coordinates, not call order."""
        first = poisson_arrival_times(chunk_rng(1, 0, 0, 0, 0, 0), 20.0, 2.0)
        _ = poisson_arrival_times(chunk_rng(1, 5, 3, 1, 1, 0), 20.0, 2.0)
        again = poisson_arrival_times(chunk_rng(1, 0, 0, 0, 0, 0), 20.0, 2.0)
        assert np.array_equal(first, again)


class TestGenerateChunk:
    """Merged chunk assembly: ordering, alignment, and class scaling."""

    def test_chunk_is_sorted_and_aligned(self):
        chunk = generate_chunk(
            seed=1, epoch=0, datacenter=0,
            shares=[(0, 0, 100.0), (1, 1, 50.0)],
            duration_s=4.0, arrival="poisson", arrival_kwargs={},
            service_mean_s=0.01, service_distribution="exponential",
            class_service_scales=(1.0, 4.0),
        )
        assert np.all(np.diff(chunk.arrivals) >= 0.0)
        assert chunk.count == chunk.services.size == chunk.class_ids.size
        assert set(np.unique(chunk.class_ids)) <= {0, 1}
        assert chunk.offered_qps == pytest.approx(150.0)
        # The 4x class mean shows up in the per-class service averages.
        heavy = chunk.services[chunk.class_ids == 1]
        light = chunk.services[chunk.class_ids == 0]
        assert float(heavy.mean()) > 2.0 * float(light.mean())

    def test_empty_shares_make_empty_chunk(self):
        chunk = generate_chunk(
            seed=1, epoch=0, datacenter=0, shares=[], duration_s=4.0,
            arrival="poisson", arrival_kwargs={}, service_mean_s=0.01,
            service_distribution="exponential", class_service_scales=(1.0,),
        )
        assert chunk.count == 0


# --------------------------------------------------------------- histograms


class TestLatencyHistogram:
    """Log-binned percentiles, merging, and empty-distribution semantics."""

    def test_percentiles_track_exact_quantiles(self):
        rng = np.random.default_rng(3)
        samples = rng.exponential(0.01, 200_000)
        histogram = LatencyHistogram()
        histogram.add_batch(samples)
        for fraction in (0.5, 0.95, 0.99):
            exact = float(np.quantile(samples, fraction))
            assert histogram.percentile(fraction) == pytest.approx(exact, rel=0.02)
        assert histogram.mean_s == pytest.approx(float(samples.mean()))
        assert histogram.count == samples.size

    def test_merge_matches_single_pass(self):
        rng = np.random.default_rng(4)
        first, second = rng.exponential(0.01, 5_000), rng.exponential(0.03, 5_000)
        merged = LatencyHistogram()
        merged.add_batch(first)
        other = LatencyHistogram()
        other.add_batch(second)
        merged.merge(other)
        single = LatencyHistogram()
        single.add_batch(np.concatenate([first, second]))
        assert np.array_equal(merged.counts, single.counts)
        assert merged.sum_s == pytest.approx(single.sum_s)
        assert merged.max_s == single.max_s

    def test_empty_histogram_is_nan_not_crash(self):
        histogram = LatencyHistogram()
        assert math.isnan(histogram.mean_s)
        assert math.isnan(histogram.percentile(0.99))
        assert math.isnan(histogram.fraction_below(0.1))
        assert histogram.count == 0

    def test_sla_attainment_fraction(self):
        histogram = LatencyHistogram()
        histogram.add_batch(np.array([0.001] * 90 + [1.0] * 10))
        assert histogram.fraction_below(0.1) == pytest.approx(0.9, abs=0.01)
        assert histogram.fraction_below(2.0) == 1.0


# -------------------------------------------------------------- autoscaling


class TestAutoscaling:
    """Cooldowns, dead bands, bounds, and the N+k floor interaction."""

    def _observed(self, qps=100.0, latency=0.01, utilization=0.9):
        return EpochObservation(
            offered_qps=qps, completed_requests=1000,
            mean_latency_s=latency, utilization=utilization,
        )

    def test_static_policy_never_moves(self):
        scaler = Autoscaler(StaticPolicy(), (_datacenter(),), cooldown_epochs=0)
        for epoch in range(5):
            assert scaler.plan(epoch, 0, 3, self._observed()) == 3

    def test_cooldown_freezes_after_change(self):
        """After one scaling action the count is pinned for the cooldown
        window, even though the policy still wants to move."""
        dc = _datacenter(servers=2, max_servers=50)
        scaler = Autoscaler(
            TargetUtilizationPolicy(target=0.5, band=0.05), (dc,), cooldown_epochs=3
        )
        hot = self._observed(qps=2_000.0, utilization=0.95)
        first = scaler.plan(1, 0, 2, hot)
        assert first > 2
        assert scaler.plan(2, 0, first, hot) == first
        assert scaler.plan(3, 0, first, hot) == first
        cold = self._observed(qps=100.0, utilization=0.05)
        assert scaler.plan(4, 0, first, cold) < first

    def test_dead_band_prevents_flapping(self):
        """Utilization oscillating inside the band never triggers scaling."""
        dc = _datacenter(servers=4, max_servers=50)
        scaler = Autoscaler(
            TargetUtilizationPolicy(target=0.65, band=0.1), (dc,), cooldown_epochs=0
        )
        for epoch, utilization in enumerate([0.6, 0.7, 0.58, 0.72, 0.66] * 4):
            observed = self._observed(qps=500.0, utilization=utilization)
            assert scaler.plan(epoch, 0, 4, observed) == 4

    def test_scale_to_zero_guard(self):
        """Zero demand proposes zero servers; the clamp keeps one."""
        dc = _datacenter(servers=2)
        scaler = Autoscaler(
            TargetUtilizationPolicy(target=0.6, band=0.05), (dc,), cooldown_epochs=0
        )
        idle = self._observed(qps=0.0, utilization=0.0)
        assert scaler.plan(1, 0, 2, idle) == 1

    def test_nk_floor_from_sizing(self):
        """size_n_plus_k's redundant server count acts as a hard floor."""
        from repro.experiments.service import build_service_chip
        from repro.service.sizing import ClusterSizer
        from repro.tco.datacenter import DatacenterDesign
        from repro.workloads.suite import default_suite

        suite = default_suite()
        chip = build_service_chip("Scale-Out (OoO)", suite)
        sizer = ClusterSizer(DatacenterDesign(suite=suite), memory_gb=64)
        sized = sizer.size_n_plus_k(
            chip, suite["Web Search"], target_qps=5e5, sla_p99_s=0.025, k=2
        )
        assert sized.servers == sized.base_servers + 2
        dc = _datacenter(servers=sized.servers, max_servers=4 * sized.servers)
        scaler = Autoscaler(
            TargetUtilizationPolicy(target=0.6, band=0.05), (dc,),
            cooldown_epochs=0, floors=(sized.servers,),
        )
        idle = self._observed(qps=1.0, utilization=0.01)
        assert scaler.plan(1, 0, sized.servers, idle) == sized.servers

    def test_queue_depth_policy_reacts_to_latency(self):
        policy = make_policy("queue_depth", target_depth=0.5, trigger_ratio=1.2)
        dc = _datacenter(servers=2)
        slow = EpochObservation(
            offered_qps=300.0, completed_requests=500,
            mean_latency_s=0.05, utilization=0.9,
        )
        assert policy.desired_servers(dc, 2, slow) > 2
        idle = EpochObservation(
            offered_qps=0.0, completed_requests=0,
            mean_latency_s=float("nan"), utilization=0.0,
        )
        assert policy.desired_servers(dc, 2, idle) == 2

    def test_make_policy_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_policy("ml_oracle")


# ------------------------------------------------------------ fleet engine


class TestFleetEngine:
    """Day-level wiring: autoscaler integration, telemetry, and results."""

    def _config(self, **kwargs):
        defaults = dict(
            datacenters=(_datacenter(servers=2, max_servers=8),),
            offered_qps=300.0,
            load_shape=LoadShape((1.6, 0.4, 1.0), epoch_s=2.0),
        )
        defaults.update(kwargs)
        return FleetConfig(**defaults)

    def test_autoscaling_day_records_scale_events(self):
        result = FleetSimulation(
            self._config(
                autoscale="target_utilization",
                autoscale_kwargs={"target": 0.5, "band": 0.05},
                cooldown_epochs=0,
            ),
            seed=3,
        ).run()
        assert sum(result.scale_events.values()) > 0
        servers_by_epoch = [stats.servers for stats in result.epoch_stats]
        assert len(set(servers_by_epoch)) > 1

    def test_static_day_never_scales(self):
        result = FleetSimulation(self._config(), seed=3).run()
        assert sum(result.scale_events.values()) == 0
        assert all(stats.servers == 2 for stats in result.epoch_stats)

    def test_fleet_counters_and_span(self):
        from repro.obs.tracer import Tracer, set_tracer

        tracer = Tracer()
        set_tracer(tracer)
        try:
            result = FleetSimulation(self._config(), seed=1).run()
        finally:
            set_tracer(None)
        counters = tracer.counters()
        assert counters["fleet.requests"] == result.total_requests
        assert counters["fleet.epochs"] == 3
        assert counters["fleet.engine.fast"] == 1
        assert any(span.name == "fleet.day" for span in tracer.roots)

    def test_monthly_cost_scales_with_server_hours(self):
        config = self._config()
        result = FleetSimulation(config, seed=1).run()
        day_hours = 3 * 2.0 / 3600.0
        cost = result.monthly_cost_usd(config.datacenters, day_hours)
        # Two servers deployed all day at the default monthly price.
        assert cost == pytest.approx(2 * 280.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(datacenters=(), offered_qps=10.0)
        with pytest.raises(ValueError):
            self._config(routing="teleport")
        with pytest.raises(ValueError):
            self._config(
                classes=(RequestClass("only", fraction=0.5),)
            )
        with pytest.raises(ValueError):
            self._config(origin_weights=(0.5, 0.5))
        with pytest.raises(ValueError):
            FleetSimulation(self._config(), engine="warp")


# ------------------------------------------------------------------ studies


class TestFleetStudies:
    """Row contracts of the chapter-10 catalog studies (tiny overrides)."""

    def test_diurnal_day_rows(self):
        from repro.experiments.fleet import fleet_diurnal_day

        rows = fleet_diurnal_day(offered_qps=500.0, epoch_s=0.25)
        datacenters = {row["datacenter"] for row in rows}
        assert "fleet" in datacenters and len(datacenters) == 4
        assert len(rows) == 24 * 4
        fleet_rows = [row for row in rows if row["datacenter"] == "fleet"]
        assert fleet_rows[14]["multiplier"] == pytest.approx(1.75, rel=1e-3)

    def test_autoscale_policy_rows(self):
        from repro.experiments.fleet import fleet_autoscale_policies

        rows = fleet_autoscale_policies(
            offered_qps=500.0, epoch_s=0.25, policies=("static", "target_utilization")
        )
        by_policy = {row["autoscale"]: row for row in rows}
        assert by_policy["static"]["scale_events"] == 0
        assert by_policy["target_utilization"]["server_hours"] <= (
            by_policy["static"]["server_hours"]
        )

    def test_class_priority_rows(self):
        from repro.experiments.fleet import fleet_class_priorities

        rows = fleet_class_priorities(offered_qps=500.0, epoch_s=0.25)
        by_class = {row["request_class"]: row for row in rows}
        assert set(by_class) == {"interactive", "batch"}
        assert by_class["interactive"]["requests"] > by_class["batch"]["requests"]
