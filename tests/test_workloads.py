"""Tests for workload profiles, miss-ratio curves, the suite, and trace generation."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    CLOUDSUITE,
    CaptureCurve,
    MissRatioCurve,
    SyntheticTraceGenerator,
    WorkloadSuite,
    default_suite,
    get_workload,
    workload_names,
)
from repro.workloads.cloudsuite import MEDIA_STREAMING, WEB_SEARCH
from repro.workloads.profile import CoreBehavior, WorkloadProfile
from repro.workloads.traces import LINE_BYTES


class TestCaptureCurve:
    def test_bounds(self):
        curve = CaptureCurve(half_capture_mb=2.0)
        assert curve.capture_fraction(0.0) == 0.0
        assert 0.49 < curve.capture_fraction(2.0) < 0.51
        assert curve.capture_fraction(64.0) > 0.95

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CaptureCurve(half_capture_mb=0)
        with pytest.raises(ValueError):
            CaptureCurve(half_capture_mb=1.0, exponent=0)
        with pytest.raises(ValueError):
            CaptureCurve(half_capture_mb=1.0).capture_fraction(-1.0)

    @given(
        st.floats(min_value=0.1, max_value=16.0),
        st.floats(min_value=0.5, max_value=3.0),
        st.floats(min_value=0.0, max_value=64.0),
        st.floats(min_value=0.01, max_value=8.0),
    )
    def test_monotonic_in_capacity(self, half, exponent, capacity, delta):
        curve = CaptureCurve(half_capture_mb=half, exponent=exponent)
        assert curve.capture_fraction(capacity + delta) >= curve.capture_fraction(capacity)

    @given(st.floats(min_value=0.1, max_value=16.0), st.floats(min_value=0.0, max_value=128.0))
    def test_fraction_within_unit_interval(self, half, capacity):
        fraction = CaptureCurve(half_capture_mb=half).capture_fraction(capacity)
        assert 0.0 <= fraction <= 1.0


class TestMissRatioCurve:
    def _curve(self) -> MissRatioCurve:
        return MissRatioCurve(
            floor_mpki=3.0,
            capturable_mpki=6.0,
            capture=CaptureCurve(half_capture_mb=2.0),
            instruction_mpki=5.0,
            instruction_capture=CaptureCurve(half_capture_mb=0.5, exponent=2.0),
        )

    def test_floor_reached_at_large_capacity(self):
        curve = self._curve()
        assert curve.mpki(1024.0) == pytest.approx(3.0, abs=0.2)

    def test_mpki_decreases_with_capacity(self):
        curve = self._curve()
        values = [curve.mpki(c) for c in (0.5, 1, 2, 4, 8, 16, 32)]
        assert values == sorted(values, reverse=True)

    def test_sharing_dilution_increases_misses(self):
        curve = self._curve()
        assert curve.mpki(4.0, cores=64) > curve.mpki(4.0, cores=1)

    def test_instruction_component_separate(self):
        curve = self._curve()
        total = curve.mpki(1.0)
        assert total == pytest.approx(curve.data_mpki(1.0) + curve.instruction_llc_mpki(1.0))

    def test_instruction_capture_required(self):
        with pytest.raises(ValueError):
            MissRatioCurve(
                floor_mpki=1.0,
                capturable_mpki=1.0,
                capture=CaptureCurve(half_capture_mb=1.0),
                instruction_mpki=2.0,
                instruction_capture=None,
            )

    def test_miss_ratio_bounded(self):
        curve = self._curve()
        assert 0.0 < curve.miss_ratio(1.0, llc_apki=50.0) <= 1.0

    def test_capacity_for_mpki_inverts(self):
        curve = self._curve()
        capacity = curve.capacity_for_mpki(5.0)
        assert curve.data_mpki(capacity) == pytest.approx(5.0, rel=0.02)
        assert curve.capacity_for_mpki(2.0) == math.inf
        assert curve.capacity_for_mpki(100.0) == 0.0

    @given(st.floats(min_value=0.25, max_value=64.0), st.integers(min_value=1, max_value=256))
    def test_mpki_always_at_least_floor(self, capacity, cores):
        curve = self._curve()
        assert curve.mpki(capacity, cores) >= curve.floor_mpki - 1e-9


class TestCloudSuiteProfiles:
    def test_seven_workloads(self):
        assert len(CLOUDSUITE) == 7
        assert len(workload_names()) == 7

    def test_lookup_by_name(self):
        assert get_workload("web search") is WEB_SEARCH
        assert get_workload("Media Streaming") is MEDIA_STREAMING
        with pytest.raises(KeyError):
            get_workload("spec cpu")

    @pytest.mark.parametrize("workload", CLOUDSUITE, ids=lambda w: w.name)
    def test_profile_sanity(self, workload):
        assert 0 < workload.snoop_fraction < 0.10
        assert workload.l1i_mpki > 0 and workload.l1d_mpki > 0
        assert workload.max_cores in (16, 32, 64)
        for core in ("conventional", "ooo", "inorder"):
            behavior = workload.behavior(core)
            assert behavior.base_cpi > 0
            assert behavior.data_mlp >= 1.0

    @pytest.mark.parametrize("workload", CLOUDSUITE, ids=lambda w: w.name)
    def test_llc_mpki_monotone_in_capacity(self, workload):
        values = [workload.llc_mpki(c, cores=16) for c in (1, 2, 4, 8, 16, 32)]
        assert values == sorted(values, reverse=True)

    def test_average_snoop_fraction_matches_paper(self):
        # Figure 4.3: on average ~2.7 of 100 LLC accesses trigger a snoop.
        mean = sum(w.snoop_fraction for w in CLOUDSUITE) / len(CLOUDSUITE)
        assert 0.015 < mean < 0.04

    def test_scalability_limits_match_table_3_1(self):
        assert get_workload("Media Streaming").max_cores == 16
        assert get_workload("Web Frontend").max_cores == 32
        assert get_workload("Web Search").max_cores == 32
        assert get_workload("Data Serving").max_cores == 64

    def test_conventional_core_filters_more_l1_misses(self):
        workload = get_workload("Data Serving")
        conv_i, conv_d = workload.l1_mpki("conventional")
        ooo_i, ooo_d = workload.l1_mpki("ooo")
        assert conv_i < ooo_i and conv_d < ooo_d

    def test_offchip_traffic_positive_and_decreasing_with_capacity(self):
        workload = get_workload("MapReduce-C")
        small = workload.offchip_bytes_per_instruction(1.0)
        large = workload.offchip_bytes_per_instruction(16.0)
        assert small > large > 0

    def test_software_scaling_factor(self):
        media = get_workload("Media Streaming")
        assert media.software_scaling_factor(16) == pytest.approx(1.0)
        assert media.software_scaling_factor(64) == pytest.approx(0.25)
        sat = get_workload("SAT Solver")
        assert sat.software_scaling_factor(64) < 1.0

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(
                name="bad",
                l1i_mpki=-1,
                l1d_mpki=1,
                llc_curve=CLOUDSUITE[0].llc_curve,
                core_behavior=CLOUDSUITE[0].core_behavior,
                snoop_fraction=0.01,
            )
        with pytest.raises(ValueError):
            CoreBehavior(base_cpi=0.5, l1_miss_scale=1.0, data_mlp=0.5, memory_mlp=1.0)

    def test_with_overrides(self):
        modified = WEB_SEARCH.with_overrides(max_cores=16)
        assert modified.max_cores == 16
        assert WEB_SEARCH.max_cores == 32


class TestWorkloadSuite:
    def test_default_suite_contents(self):
        suite = default_suite()
        assert len(suite) == 7
        assert suite["Web Search"] is WEB_SEARCH
        assert suite[0].name == "Data Serving"

    def test_filtering(self):
        suite = default_suite()
        assert len(suite.scalable_to(64)) == 4
        assert len(suite.scalable_to(32)) == 6
        assert all(w.latency_sensitive for w in suite.latency_sensitive())

    def test_aggregations(self):
        suite = default_suite()
        mean = suite.mean(lambda w: w.snoop_fraction)
        geomean = suite.geomean(lambda w: w.l1i_mpki)
        assert mean > 0 and geomean > 0
        assert suite.worst_case(lambda w: w.l1i_mpki) == max(w.l1i_mpki for w in suite)

    def test_geomean_rejects_non_positive_values_with_context(self):
        suite = default_suite()
        with pytest.raises(ValueError) as excinfo:
            suite.geomean(lambda w: -1.0 if w.name == "Web Search" else 1.0)
        message = str(excinfo.value)
        assert "positive" in message
        assert "Web Search" in message  # names the offending workload
        with pytest.raises(ValueError):
            suite.geomean(lambda w: 0.0)

    def test_per_workload_keys(self):
        suite = default_suite()
        table = suite.per_workload(lambda w: w.max_cores)
        assert set(table) == set(suite.names())

    def test_invalid_suites(self):
        with pytest.raises(ValueError):
            WorkloadSuite(())
        with pytest.raises(ValueError):
            WorkloadSuite((WEB_SEARCH, WEB_SEARCH))
        with pytest.raises(KeyError):
            default_suite()["unknown"]


class TestSyntheticTraces:
    def test_deterministic_given_seed(self):
        generator = SyntheticTraceGenerator(WEB_SEARCH, cores=4, seed=3)
        again = SyntheticTraceGenerator(WEB_SEARCH, cores=4, seed=3)
        assert generator.events_for_core(1, 2000) == again.events_for_core(1, 2000)

    def test_different_seeds_differ(self):
        a = SyntheticTraceGenerator(WEB_SEARCH, cores=2, seed=1).events_for_core(0, 2000)
        b = SyntheticTraceGenerator(WEB_SEARCH, cores=2, seed=2).events_for_core(0, 2000)
        assert a != b

    def test_event_rate_matches_profile(self):
        generator = SyntheticTraceGenerator(WEB_SEARCH, cores=1, seed=1)
        events = generator.events_for_core(0, 50_000)
        expected = generator.expected_llc_accesses_per_instruction() * 50_000
        assert len(events) == pytest.approx(expected, rel=0.05)

    def test_addresses_line_aligned(self):
        generator = SyntheticTraceGenerator(MEDIA_STREAMING, cores=2, seed=9)
        for event in generator.events_for_core(0, 3000):
            assert event.address % LINE_BYTES == 0
            assert event.instruction_gap >= 1

    def test_instruction_events_are_reads(self):
        generator = SyntheticTraceGenerator(WEB_SEARCH, cores=1, seed=4)
        for event in generator.events_for_core(0, 5000):
            if event.is_instruction:
                assert not event.is_write
                assert not event.shared

    def test_traces_for_all_cores(self):
        generator = SyntheticTraceGenerator(WEB_SEARCH, cores=3, seed=1)
        traces = generator.traces(1000)
        assert len(traces) == 3
        assert all(len(t) > 0 for t in traces)

    def test_invalid_arguments(self):
        generator = SyntheticTraceGenerator(WEB_SEARCH, cores=2, seed=1)
        with pytest.raises(ValueError):
            generator.events_for_core(5, 100)
        with pytest.raises(ValueError):
            generator.events_for_core(0, 0)
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(WEB_SEARCH, cores=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1000, max_value=20000))
    def test_shared_fraction_tracks_profile(self, instructions):
        generator = SyntheticTraceGenerator(WEB_SEARCH, cores=1, seed=11)
        events = generator.events_for_core(0, instructions)
        if len(events) < 50:
            return
        shared = sum(1 for e in events if e.shared) / len(events)
        assert shared <= WEB_SEARCH.snoop_fraction * 4 + 0.05
