"""Tests for fault injection, dependability metrics, and N+k sizing."""

import json
import multiprocessing
import os

import pytest

from repro.faults import (
    FaultLoadConfig,
    FaultLoadGenerator,
    FaultSchedule,
    LinkFault,
    ServerCrash,
    Straggler,
    apply_link_faults,
    availability_from_downtime,
)
from repro.faults.events import EMPTY_SCHEDULE
from repro.faults.noc import undirected_links
from repro.obs.tracer import Tracer, use_tracer
from repro.runtime import ResultCache, SweepExecutor, SweepPointError
from repro.service.cluster import ClusterConfig, ClusterSimulation, simulate_cluster


def faulty_cluster(utilization=0.7, num_servers=4, policy="jsq"):
    parallelism, service_mean_s = 4, 0.002
    return ClusterConfig(
        num_servers=num_servers,
        parallelism=parallelism,
        service_mean_s=service_mean_s,
        offered_qps=utilization * num_servers * parallelism / service_mean_s,
        policy=policy,
    )


def crash_schedule(config, num_requests=3_000, intensity=1.0, seed=7, **overrides):
    horizon_s = num_requests / config.offered_qps
    load = FaultLoadConfig(crash_intensity=intensity, **overrides)
    return FaultLoadGenerator(load, seed=seed).schedule(config.num_servers, horizon_s)


# ---------------------------------------------------------------- schedules
class TestFaultSchedule:
    def test_same_seed_identical_schedule_and_digest(self):
        config = FaultLoadConfig(crash_intensity=2.0, straggler_intensity=1.0)
        one = FaultLoadGenerator(config, seed=7).schedule(4, 10.0)
        two = FaultLoadGenerator(config, seed=7).schedule(4, 10.0)
        assert one == two
        assert one.digest() == two.digest()

    def test_different_seed_different_schedule(self):
        config = FaultLoadConfig(crash_intensity=2.0)
        one = FaultLoadGenerator(config, seed=7).schedule(4, 10.0)
        two = FaultLoadGenerator(config, seed=8).schedule(4, 10.0)
        assert one.crashes != two.crashes
        assert one.digest() != two.digest()

    def test_digest_is_content_addressed_not_seed_addressed(self):
        crash = ServerCrash(server=0, at_s=1.0, restart_s=2.0)
        built = FaultSchedule(crashes=(crash,), seed=None, horizon_s=10.0)
        relabeled = FaultSchedule(crashes=(crash,), seed=99, horizon_s=10.0)
        assert built.digest() == relabeled.digest()

    def test_adding_a_server_preserves_existing_streams(self):
        config = FaultLoadConfig(crash_intensity=2.0)
        small = FaultLoadGenerator(config, seed=7).schedule(4, 10.0)
        large = FaultLoadGenerator(config, seed=7).schedule(5, 10.0)
        for server in range(4):
            assert small.crashes_for(server) == large.crashes_for(server)

    def test_zero_config_yields_empty_schedule(self):
        config = FaultLoadConfig()
        assert config.is_zero()
        schedule = FaultLoadGenerator(config, seed=7).schedule(4, 10.0)
        assert schedule.is_empty()
        assert schedule.num_events == 0

    def test_downtime_merges_overlapping_crashes(self):
        schedule = FaultSchedule(
            crashes=(
                ServerCrash(server=0, at_s=1.0, restart_s=3.0),
                ServerCrash(server=0, at_s=2.0, restart_s=4.0),
                ServerCrash(server=1, at_s=0.0, restart_s=1.0),
            )
        )
        assert schedule.downtime_intervals(0) == [(1.0, 4.0)]
        assert schedule.downtime_s(2, 10.0) == pytest.approx(4.0)
        # Downtime past the measured duration is clipped.
        assert schedule.downtime_s(2, 2.0) == pytest.approx(2.0)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            ServerCrash(server=0, at_s=2.0, restart_s=1.0)
        with pytest.raises(ValueError):
            Straggler(server=0, at_s=0.0, until_s=1.0, slowdown=0.5)
        with pytest.raises(ValueError):
            LinkFault(link=(0, 1), severity="melted")
        with pytest.raises(ValueError):
            FaultLoadConfig(mttr_fraction=1.5)

    def test_availability_from_downtime(self):
        assert availability_from_downtime(4, 10.0, 0.0) == 1.0
        assert availability_from_downtime(4, 10.0, 4.0) == pytest.approx(0.9)


# ---------------------------------------------------------- faulted cluster
class TestFaultedCluster:
    def test_faulted_run_deterministic(self):
        config = faulty_cluster()
        schedule = crash_schedule(config)
        one = simulate_cluster(config, num_requests=3_000, seed=42, faults=schedule)
        two = simulate_cluster(config, num_requests=3_000, seed=42, faults=schedule)
        assert one == two

    def test_empty_schedule_byte_identical_to_unfaulted(self):
        config = faulty_cluster()
        base = simulate_cluster(config, num_requests=2_000, seed=42)
        faulted = simulate_cluster(
            config, num_requests=2_000, seed=42, faults=EMPTY_SCHEDULE
        )
        assert faulted == base
        assert faulted.dependability is None

    def test_crashes_cut_availability_and_goodput(self):
        config = faulty_cluster()
        schedule = crash_schedule(config, intensity=2.0)
        result = simulate_cluster(config, num_requests=3_000, seed=42, faults=schedule)
        dep = result.dependability
        assert dep is not None
        assert 0.0 < dep.availability < 1.0
        assert dep.crashes == len(schedule.crashes)
        assert dep.lost_requests > 0
        assert dep.completed_requests + dep.failed_requests == dep.offered_requests
        assert dep.goodput_fraction < 1.0
        assert dep.mean_time_to_recover_s > 0.0
        assert dep.max_time_to_recover_s >= dep.mean_time_to_recover_s

    def test_straggler_window_inflates_latency(self):
        config = faulty_cluster(policy="random")
        horizon_s = 3_000 / config.offered_qps
        slow = FaultSchedule(
            stragglers=tuple(
                Straggler(server=s, at_s=0.0, until_s=horizon_s, slowdown=8.0)
                for s in range(config.num_servers)
            )
        )
        base = simulate_cluster(config, num_requests=3_000, seed=42, engine="event")
        slowed = simulate_cluster(config, num_requests=3_000, seed=42, faults=slow)
        assert slowed.latency.mean_s > base.latency.mean_s

    def test_fast_engine_rejects_faults(self):
        config = faulty_cluster(policy="random")
        schedule = crash_schedule(config)
        with pytest.raises(ValueError, match="live queue state"):
            ClusterSimulation(config, engine="fast", faults=schedule)

    def test_faults_force_event_engine(self):
        config = faulty_cluster(policy="random")
        schedule = crash_schedule(config)
        assert ClusterSimulation(config, faults=schedule).resolved_engine() == "event"
        assert ClusterSimulation(config, faults=EMPTY_SCHEDULE).faults is None

    def test_fault_counters_traced(self):
        config = faulty_cluster()
        schedule = crash_schedule(config, intensity=2.0)
        tracer = Tracer()
        with use_tracer(tracer):
            simulate_cluster(config, num_requests=3_000, seed=42, faults=schedule)
        counters = tracer.counters()
        assert counters["faults.server_crash"] == len(schedule.crashes)
        assert counters["faults.server_restart"] >= 1
        assert counters.get("faults.requests_lost", 0) > 0


# -------------------------------------------------------------- fault sweeps
class TestFaultSweeps:
    SWEEP_KWARGS = dict(
        crash_intensities=(0.0, 1.0, 2.0),
        num_servers=4,
        num_requests=2_000,
    )

    def test_serial_and_parallel_sweeps_identical(self):
        from repro.experiments.faults import service_fault_sweep

        serial = service_fault_sweep(
            executor=SweepExecutor(mode="serial"), **self.SWEEP_KWARGS
        )
        parallel = service_fault_sweep(
            executor=SweepExecutor(mode="process", max_workers=2), **self.SWEEP_KWARGS
        )
        assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)

    def test_sweep_payload_shape_and_faults_block(self):
        from repro.experiments.faults import service_fault_sweep

        payload = service_fault_sweep(
            executor=SweepExecutor(mode="serial"), **self.SWEEP_KWARGS
        )
        rows = payload["sweep"]
        assert [row["crash_intensity"] for row in rows] == [0.0, 1.0, 2.0]
        assert rows[0]["availability"] == 1.0
        assert rows[0]["fault_events"] == 0
        assert rows[-1]["availability"] < 1.0
        block = payload["faults"]
        assert block["schedules"] == 3
        assert len(block["digest"]) == 64

    def test_envelope_provenance_carries_fault_identity(self):
        from repro.experiments.registry import run_experiment

        result = run_experiment(
            "fault_service_sweep", use_cache=False,
            executor=SweepExecutor(mode="serial"), **self.SWEEP_KWARGS,
        )
        assert result.provenance["fault_seed"] == 7
        assert result.provenance["fault_schedule_digest"] == result.data["faults"]["digest"]
        # The envelope's row view is the sweep list itself.
        assert result.rows == result.data["sweep"]

    def test_unfaulted_experiments_have_no_fault_provenance(self):
        from repro.experiments.registry import run_experiment

        result = run_experiment("table_4_1", use_cache=False)
        assert "fault_seed" not in result.provenance
        assert "fault_schedule_digest" not in result.provenance

    def test_noc_fault_sweep_zero_point_matches_healthy_study(self):
        from repro.experiments.faults import noc_fault_sweep

        payload = noc_fault_sweep(
            failed_links=(0, 4), duration_cycles=2_000,
            executor=SweepExecutor(mode="serial"),
        )
        healthy, faulted = payload["sweep"]
        assert healthy["failed_links"] == 0
        assert healthy["fault_events"] == 0
        assert faulted["request_latency_cycles"] > healthy["request_latency_cycles"]
        assert faulted["system_ipc"] < healthy["system_ipc"]


# ----------------------------------------------------------------- NoC faults
class TestNocLinkFaults:
    def _mesh(self):
        from repro.noc.simulation import _cached_topology

        return _cached_topology("mesh", 64)

    def test_empty_fault_list_returns_same_object(self):
        mesh = self._mesh()
        assert apply_link_faults(mesh, ()) is mesh

    def test_down_link_removed_and_original_untouched(self):
        mesh = self._mesh()
        edges_before = mesh.graph.number_of_edges()
        link = undirected_links(mesh)[0]
        faulted = apply_link_faults(mesh, (LinkFault(link=link, severity="down"),))
        assert mesh.graph.number_of_edges() == edges_before
        assert faulted.graph.number_of_edges() == edges_before - 2
        assert faulted.name.endswith("+faults")
        assert faulted.routing is None

    def test_degraded_link_keeps_edges_but_slows_them(self):
        mesh = self._mesh()
        a, b = undirected_links(mesh)[0]
        faulted = apply_link_faults(
            mesh, (LinkFault(link=(a, b), severity="degraded", latency_factor=4.0),)
        )
        healthy_latency = mesh.graph.edges[a, b]["attrs"].latency_cycles
        assert (
            faulted.graph.edges[a, b]["attrs"].latency_cycles == 4 * healthy_latency
        )

    def test_partitioning_removal_degrades_instead(self):
        import networkx as nx

        from repro.noc.simulation import _cached_topology

        tree = _cached_topology("nocout", 64)
        faults = tuple(
            LinkFault(link=link, severity="down") for link in undirected_links(tree)
        )
        faulted = apply_link_faults(tree, faults)
        # Taking every link "down" must not partition the network: removals
        # that would cut a core off from an LLC bank fall back to degradation,
        # so cores and LLCs stay mutually reachable (some edges survive).
        assert faulted.graph.number_of_edges() > 0
        required = set(faulted.core_nodes) | set(faulted.llc_nodes)
        assert any(
            required <= component
            for component in nx.strongly_connected_components(faulted.graph)
        )

    def test_generator_samples_links_deterministically(self):
        mesh = self._mesh()
        config = FaultLoadConfig(num_failed_links=2, num_degraded_links=3)
        links = undirected_links(mesh)
        one = FaultLoadGenerator(config, seed=7).schedule(1, 1.0, links=links)
        two = FaultLoadGenerator(config, seed=7).schedule(1, 1.0, links=links)
        assert one.link_faults == two.link_faults
        severities = [fault.severity for fault in one.link_faults]
        assert severities.count("down") == 2
        assert severities.count("degraded") == 3


# ----------------------------------------------------------------- N+k sizing
class TestNkSizing:
    def _sizer_and_chip(self):
        from repro.experiments.service import build_service_chip
        from repro.service.sizing import ClusterSizer
        from repro.tco.datacenter import DatacenterDesign
        from repro.workloads.suite import default_suite

        suite = default_suite()
        chip = build_service_chip("Scale-Out (OoO)", suite)
        return ClusterSizer(DatacenterDesign(suite=suite), memory_gb=64), chip, suite

    def test_k0_reduces_to_base_sizing(self):
        sizer, chip, suite = self._sizer_and_chip()
        workload = suite["Web Search"]
        base = sizer.size(chip, workload, target_qps=1e6, sla_p99_s=0.025)
        redundant = sizer.size_n_plus_k(
            chip, workload, target_qps=1e6, sla_p99_s=0.025, k=0
        )
        assert redundant.servers == base.servers
        assert redundant.monthly_tco_usd == pytest.approx(base.monthly_tco_usd)
        assert redundant.p99_s == pytest.approx(base.p99_s)
        assert redundant.redundancy_overhead == pytest.approx(0.0)

    def test_tco_and_availability_monotone_in_k(self):
        sizer, chip, suite = self._sizer_and_chip()
        workload = suite["Web Search"]
        results = [
            sizer.size_n_plus_k(chip, workload, target_qps=1e6, sla_p99_s=0.025, k=k)
            for k in (0, 1, 2, 4)
        ]
        tcos = [r.monthly_tco_usd for r in results]
        availabilities = [r.cluster_availability for r in results]
        assert tcos == sorted(tcos)
        assert availabilities == sorted(availabilities)
        assert all(r.servers == r.base_servers + r.k for r in results)
        # Degraded operation (k servers lost) still shows the base p99.
        assert all(
            r.degraded_p99_s == pytest.approx(results[0].p99_s) for r in results
        )

    def test_cluster_availability_bounds(self):
        from repro.service.sizing import cluster_availability

        assert cluster_availability(4, 4, 0.9) == pytest.approx(1.0)
        assert cluster_availability(4, 0, 0.9) == pytest.approx(0.9**4)
        assert cluster_availability(10, 2, 1.0) == pytest.approx(1.0)


# ------------------------------------------------------------ executor retry
def _fails_on_three(value):
    if value == 3:
        raise ValueError("point three always fails")
    return value * 10


def _fails_in_worker(value):
    if multiprocessing.current_process().name != "MainProcess":
        raise RuntimeError("worker-only failure")
    return value * 10


class TestExecutorRetry:
    def test_retry_recovers_worker_only_failures(self):
        executor = SweepExecutor(mode="process", max_workers=2, chunksize=2)
        results = executor.map(_fails_in_worker, [(i,) for i in range(6)])
        assert results == [i * 10 for i in range(6)]

    def test_persistent_point_failure_names_its_index(self):
        executor = SweepExecutor(mode="process", max_workers=2, chunksize=2)
        with pytest.raises(SweepPointError) as excinfo:
            executor.map(_fails_on_three, [(i,) for i in range(6)])
        assert excinfo.value.point_index == 3
        assert "3" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_retry_counter_traced(self):
        executor = SweepExecutor(mode="process", max_workers=2, chunksize=3)
        tracer = Tracer()
        with use_tracer(tracer):
            results = executor.map(_fails_in_worker, [(i,) for i in range(6)])
        assert results == [i * 10 for i in range(6)]
        assert tracer.counters()["executor.chunk_retries"] == 2


# ------------------------------------------------------------- corrupt cache
class TestCorruptCacheEntries:
    def test_corrupt_json_degrades_to_miss(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        cache.put("key", {"rows": [1, 2]}, category="experiment")
        path = os.path.join(str(tmp_path), "key.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"payload": [truncated')
        fresh = ResultCache(cache_dir=str(tmp_path))
        tracer = Tracer()
        with use_tracer(tracer):
            assert fresh.get("key", category="experiment") is None
        stats = fresh.stats()
        assert stats["corrupt"] == 1
        assert stats["misses"] == 1
        assert stats["categories"]["experiment"]["corrupt"] == 1
        assert tracer.counters()["cache.experiment.corrupt"] == 1

    def test_corrupt_pickle_degrades_to_miss(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        with open(os.path.join(str(tmp_path), "key.pkl"), "wb") as handle:
            handle.write(b"\x80\x05 not a pickle")
        assert cache.get("key") is None
        assert cache.stats()["corrupt"] == 1

    def test_healthy_entries_unaffected(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        cache.put("key", {"rows": [1, 2]})
        fresh = ResultCache(cache_dir=str(tmp_path))
        assert fresh.get("key") == {"rows": [1, 2]}
        assert fresh.stats()["corrupt"] == 0
