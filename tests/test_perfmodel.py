"""Tests for the analytic performance model and performance density."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.perfmodel import (
    AnalyticPerformanceModel,
    AreaBudget,
    PerformanceEstimate,
    SystemConfig,
    performance_density,
)
from repro.perfmodel.amat import CpiBreakdown, LlcAccessLatency
from repro.technology.node import NODE_20NM, NODE_40NM
from repro.workloads import default_suite, get_workload


@pytest.fixture(scope="module")
def model():
    return AnalyticPerformanceModel()


class TestCpiBreakdown:
    def test_total_and_ipc(self):
        cpi = CpiBreakdown(base=0.5, instruction_fetch=0.2, data_llc=0.2, memory=0.1)
        assert cpi.total == pytest.approx(1.0)
        assert cpi.ipc == pytest.approx(1.0)
        assert set(cpi.as_dict()) == {"base", "instruction_fetch", "data_llc", "memory", "total", "ipc"}

    def test_llc_latency_total(self):
        latency = LlcAccessLatency(bank_cycles=4, network_cycles=5, contention_cycles=1)
        assert latency.total_cycles == 10


class TestSystemConfig:
    def test_default_banking_rules(self):
        assert SystemConfig(cores=16, interconnect="crossbar").resolved_banks() == 4
        assert SystemConfig(cores=16, interconnect="mesh").resolved_banks() == 16
        assert SystemConfig(cores=16, llc_banks=2).resolved_banks() == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(cores=0)
        with pytest.raises(ValueError):
            SystemConfig(cores=1, llc_capacity_mb=0)
        with pytest.raises(ValueError):
            SystemConfig(cores=1, effective_capacity_factor=0)

    def test_effective_capacity(self):
        config = SystemConfig(cores=4, llc_capacity_mb=8, effective_capacity_factor=0.5)
        assert config.effective_llc_capacity_mb == pytest.approx(4.0)


class TestEstimates:
    def test_estimate_fields(self, model):
        workload = get_workload("Web Search")
        config = SystemConfig(cores=16, core_type="ooo", llc_capacity_mb=4)
        estimate = model.estimate(workload, config)
        assert isinstance(estimate, PerformanceEstimate)
        assert estimate.per_core_ipc > 0
        assert estimate.aggregate_ipc == pytest.approx(16 * estimate.per_core_ipc)
        assert estimate.offchip_bandwidth_gbps > 0
        assert estimate.llc_mpki > 0

    @pytest.mark.parametrize("workload_name", [w.name for w in default_suite()])
    def test_figure_2_1_ipc_ranges(self, model, workload_name):
        # Figure 2.1: only Media Streaming commits below 1 IPC on the aggressive
        # core; every workload commits at most ~2 IPC.
        workload = get_workload(workload_name)
        config = SystemConfig(cores=4, core_type="conventional", llc_capacity_mb=4, interconnect="ideal")
        ipc = model.estimate(workload, config).per_core_ipc
        assert 0.5 < ipc < 2.0
        if workload_name == "Media Streaming":
            assert ipc < 1.0

    def test_figure_2_2_llc_sweep_shape(self, model):
        # Performance improves towards 4-16 MB and does not improve at 32 MB.
        suite = default_suite()
        def perf(llc):
            cfg = SystemConfig(cores=4, core_type="ooo", llc_capacity_mb=llc, interconnect="crossbar")
            return model.average_aggregate_ipc(cfg, suite)
        p1, p8, p32 = perf(1), perf(8), perf(32)
        assert p8 > p1
        assert p32 <= p8 * 1.02

    def test_figure_2_3_interconnect_gap_grows(self, model):
        suite = default_suite()
        def per_core(cores, interconnect):
            cfg = SystemConfig(cores=cores, core_type="ooo", llc_capacity_mb=4, interconnect=interconnect)
            return model.average_per_core_ipc(cfg, suite)
        gap_small = per_core(16, "ideal") / per_core(16, "mesh")
        gap_large = per_core(256, "ideal") / per_core(256, "mesh")
        assert gap_large > gap_small
        assert gap_large > 1.1
        # Ideal-interconnect sharing degradation stays mild (Figure 2.3a).
        assert per_core(256, "ideal") > 0.7 * per_core(2, "ideal")

    def test_smaller_cache_means_more_offchip_traffic(self, model):
        workload = get_workload("MapReduce-C")
        small = model.estimate(workload, SystemConfig(cores=16, llc_capacity_mb=1))
        large = model.estimate(workload, SystemConfig(cores=16, llc_capacity_mb=16))
        assert small.offchip_bandwidth_gbps > large.offchip_bandwidth_gbps

    def test_instruction_replication_helps_mesh_designs(self, model):
        workload = get_workload("Web Frontend")
        base = SystemConfig(cores=64, core_type="ooo", llc_capacity_mb=8, interconnect="mesh")
        with_ir = SystemConfig(
            cores=64, core_type="ooo", llc_capacity_mb=8, interconnect="mesh",
            instruction_replication=True, effective_capacity_factor=0.85, offchip_traffic_factor=1.2,
        )
        assert model.estimate(workload, with_ir).per_core_ipc > model.estimate(workload, base).per_core_ipc

    def test_inorder_slower_than_ooo_slower_than_conventional(self, model):
        workload = get_workload("Data Serving")
        def ipc(core):
            return model.estimate(workload, SystemConfig(cores=8, core_type=core, llc_capacity_mb=4)).per_core_ipc
        assert ipc("conventional") > ipc("ooo") > ipc("inorder")

    def test_suite_helpers(self, model):
        config = SystemConfig(cores=8, core_type="ooo", llc_capacity_mb=4)
        estimates = model.suite_estimates(config)
        assert len(estimates) == 7
        assert model.worst_case_bandwidth_gbps(config) == pytest.approx(
            max(e.offchip_bandwidth_gbps for e in estimates.values())
        )

    @settings(max_examples=25, deadline=None)
    @given(
        cores=st.sampled_from([1, 2, 4, 8, 16, 32, 64]),
        llc=st.sampled_from([1.0, 2.0, 4.0, 8.0, 16.0]),
        core_type=st.sampled_from(["conventional", "ooo", "inorder"]),
        interconnect=st.sampled_from(["ideal", "crossbar", "mesh"]),
    )
    def test_estimates_always_physical(self, cores, llc, core_type, interconnect):
        model = AnalyticPerformanceModel()
        workload = get_workload("Web Search")
        config = SystemConfig(cores=cores, core_type=core_type, llc_capacity_mb=llc, interconnect=interconnect)
        estimate = model.estimate(workload, config)
        assert 0 < estimate.per_core_ipc <= 4.0
        assert estimate.cpi.total > 0
        assert estimate.llc_latency.total_cycles >= 4.0

    def test_memory_latency_uses_node_standard(self):
        workload = get_workload("Web Search")
        model = AnalyticPerformanceModel()
        cfg40 = SystemConfig(cores=8, llc_capacity_mb=4, node=NODE_40NM)
        cfg20 = SystemConfig(cores=8, llc_capacity_mb=4, node=NODE_20NM)
        # Both should produce sensible estimates; 20nm uses DDR4 timing.
        assert model.estimate(workload, cfg40).per_core_ipc > 0
        assert model.estimate(workload, cfg20).per_core_ipc > 0


class TestPerformanceDensity:
    def test_basic(self):
        assert performance_density(25.0, 250.0) == pytest.approx(0.1)
        assert performance_density(25.0, 250.0, num_dies=2) == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            performance_density(1.0, 0.0)
        with pytest.raises(ValueError):
            performance_density(-1.0, 10.0)
        with pytest.raises(ValueError):
            performance_density(1.0, 10.0, num_dies=0)

    def test_area_budget_arithmetic(self):
        a = AreaBudget(cores_mm2=10, llc_mm2=5)
        b = AreaBudget(interconnect_mm2=1, soc_misc_mm2=42)
        total = a + b
        assert total.total_mm2 == pytest.approx(58.0)
        assert a.scaled(2).cores_mm2 == pytest.approx(20.0)
        with pytest.raises(ValueError):
            AreaBudget(cores_mm2=-1)
        with pytest.raises(ValueError):
            a.scaled(-1)
