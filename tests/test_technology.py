"""Tests for the technology substrate: nodes, SRAM model, wires, components."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.technology.cacti import SramModel
from repro.technology.components import ComponentCatalog, catalog_for_node
from repro.technology.node import (
    NODE_20NM,
    NODE_32NM,
    NODE_40NM,
    ChipConstraints,
    get_node,
    scale_area,
    scale_power,
)
from repro.technology.wires import WireModel


class TestTechnologyNode:
    def test_known_nodes_lookup(self):
        assert get_node("40nm") is NODE_40NM
        assert get_node(32) is NODE_32NM
        assert get_node("20nm") is NODE_20NM

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError, match="available: 90nm, .*7nm"):
            get_node("5nm")

    def test_baseline_constraints_match_paper(self):
        assert NODE_40NM.constraints.max_power_w == pytest.approx(95.0)
        assert NODE_40NM.constraints.max_memory_channels == 6
        assert 250.0 <= NODE_40NM.constraints.max_area_mm2 <= 280.0

    def test_memory_standard_per_node(self):
        assert NODE_40NM.memory_standard == "DDR3"
        assert NODE_20NM.memory_standard == "DDR4"

    def test_cycle_time(self):
        assert NODE_40NM.cycle_time_ns == pytest.approx(0.5)
        assert NODE_40NM.cycles_for_ns(45.0) == pytest.approx(90.0)

    def test_wire_delay_cycles_monotonic(self):
        assert NODE_40NM.wire_delay_cycles(2.0) > NODE_40NM.wire_delay_cycles(1.0)
        assert NODE_40NM.wire_delay_cycles(0.0) == 0.0

    def test_wire_delay_negative_rejected(self):
        with pytest.raises(ValueError):
            NODE_40NM.wire_delay_cycles(-1.0)

    def test_area_scaling_perfect_for_logic(self):
        assert scale_area(100.0, NODE_20NM) == pytest.approx(25.0)
        assert scale_area(100.0, NODE_40NM) == pytest.approx(100.0)

    def test_analog_area_does_not_scale(self):
        assert scale_area(12.0, NODE_20NM, analog=True) == pytest.approx(12.0)

    def test_power_scaling(self):
        assert scale_power(10.0, NODE_20NM) < 10.0
        assert scale_power(10.0, NODE_20NM, analog=True) == pytest.approx(10.0)

    def test_constraints_validation(self):
        with pytest.raises(ValueError):
            ChipConstraints(max_area_mm2=-1, max_power_w=95, max_memory_channels=6)
        with pytest.raises(ValueError):
            ChipConstraints(max_area_mm2=280, max_power_w=0, max_memory_channels=6)
        with pytest.raises(ValueError):
            ChipConstraints(max_area_mm2=280, max_power_w=95, max_memory_channels=0)


class TestSramModel:
    def test_area_matches_paper_per_mb(self):
        model = SramModel(NODE_40NM)
        # Table 2.1: 5 mm^2 per MB at 40nm (within the peripheral overhead).
        assert model.area_mm2(1.0) == pytest.approx(5.75, rel=0.2)
        assert model.area_mm2(8.0) == pytest.approx(8 * 5.0, rel=0.15)

    def test_power_matches_paper_per_mb(self):
        model = SramModel(NODE_40NM)
        assert model.power_w(4.0) == pytest.approx(4.0, rel=0.05)

    def test_latency_grows_with_capacity(self):
        model = SramModel(NODE_40NM)
        latencies = [model.access_latency_cycles(c) for c in (0.5, 1, 4, 16, 64)]
        assert latencies == sorted(latencies)
        assert latencies[0] >= 1

    def test_area_scales_with_node(self):
        assert SramModel(NODE_20NM).area_mm2(4.0) < SramModel(NODE_40NM).area_mm2(4.0)

    def test_invalid_inputs(self):
        model = SramModel(NODE_40NM)
        with pytest.raises(ValueError):
            model.area_mm2(0)
        with pytest.raises(ValueError):
            model.power_w(-1)
        with pytest.raises(ValueError):
            SramModel(NODE_40NM, associativity=0)
        with pytest.raises(ValueError):
            SramModel(NODE_40NM, line_bytes=48)

    @given(st.floats(min_value=0.25, max_value=64.0))
    def test_estimate_fields_consistent(self, capacity):
        estimate = SramModel(NODE_40NM).estimate(capacity)
        assert estimate.capacity_mb == capacity
        assert estimate.area_mm2 > 0
        assert estimate.access_latency_cycles >= 1
        assert estimate.leakage_w > 0

    @given(st.floats(min_value=0.25, max_value=32.0), st.floats(min_value=1.05, max_value=4.0))
    def test_bigger_caches_are_bigger_and_slower(self, capacity, factor):
        model = SramModel(NODE_40NM)
        assert model.area_mm2(capacity * factor) > model.area_mm2(capacity)
        assert model.access_latency_cycles(capacity * factor) >= model.access_latency_cycles(capacity)


class TestWireModel:
    def test_paper_wire_delay(self):
        wires = WireModel(NODE_32NM)
        # 125 ps/mm at 2 GHz -> 4 mm in one cycle.
        assert wires.reach_per_cycle_mm() == pytest.approx(4.0)
        assert wires.delay_ps(2.0) == pytest.approx(250.0)

    def test_traversal_cycles_at_least_one(self):
        wires = WireModel(NODE_40NM)
        assert wires.traversal_cycles(0.1) == 1
        assert wires.traversal_cycles(10.0) >= 2

    def test_energy_scales_with_bits_and_length(self):
        wires = WireModel(NODE_32NM)
        assert wires.energy_pj(2.0, 128) == pytest.approx(2 * wires.energy_pj(1.0, 128))
        assert wires.energy_pj(1.0, 256) == pytest.approx(2 * wires.energy_pj(1.0, 128))

    def test_repeater_area_scales(self):
        wires = WireModel(NODE_32NM)
        assert wires.repeater_area_mm2(2.0, 128) == pytest.approx(
            2 * wires.repeater_area_mm2(1.0, 128)
        )

    def test_invalid_inputs(self):
        wires = WireModel(NODE_40NM)
        with pytest.raises(ValueError):
            wires.delay_ps(-1)
        with pytest.raises(ValueError):
            wires.energy_pj(1.0, -5)
        with pytest.raises(ValueError):
            wires.repeater_area_mm2(1.0, -5)


class TestComponentCatalog:
    def test_table_2_1_values_at_40nm(self):
        catalog = ComponentCatalog(NODE_40NM)
        assert catalog.conventional_core.area_mm2 == pytest.approx(25.0)
        assert catalog.conventional_core.power_w == pytest.approx(11.0)
        assert catalog.ooo_core.area_mm2 == pytest.approx(4.5)
        assert catalog.inorder_core.area_mm2 == pytest.approx(1.3)
        assert catalog.llc_per_mb.area_mm2 == pytest.approx(5.0)
        assert catalog.memory_interface.area_mm2 == pytest.approx(12.0)
        assert catalog.memory_interface.power_w == pytest.approx(5.7)
        assert catalog.soc_misc.area_mm2 == pytest.approx(42.0)

    def test_core_lookup_aliases(self):
        catalog = ComponentCatalog(NODE_40NM)
        assert catalog.core("conv") is catalog.conventional_core
        assert catalog.core("out-of-order") is catalog.ooo_core
        assert catalog.core("IO") is catalog.inorder_core
        with pytest.raises(KeyError):
            catalog.core("gpu")

    def test_llc_area_and_power_linear(self):
        catalog = ComponentCatalog(NODE_40NM)
        assert catalog.llc_area_mm2(8.0) == pytest.approx(40.0)
        assert catalog.llc_power_w(8.0) == pytest.approx(8.0)
        with pytest.raises(ValueError):
            catalog.llc_area_mm2(-1)

    def test_memory_interfaces(self):
        catalog = ComponentCatalog(NODE_40NM)
        assert catalog.memory_interface_area_mm2(3) == pytest.approx(36.0)
        assert catalog.memory_interface_power_w(3) == pytest.approx(17.1)

    def test_cores_shrink_at_20nm_but_interfaces_do_not(self):
        catalog = ComponentCatalog(NODE_20NM)
        assert catalog.ooo_core.area_mm2 == pytest.approx(4.5 * 0.25)
        assert catalog.memory_interface.area_mm2 == pytest.approx(12.0)

    def test_ddr4_selected_at_20nm(self):
        assert ComponentCatalog(NODE_20NM).memory_interface.name == "ddr4_interface"

    def test_catalog_for_node_accepts_names(self):
        assert catalog_for_node("40nm").node is NODE_40NM
        assert catalog_for_node(NODE_32NM).node is NODE_32NM
