"""Tests for the reproduction-report subsystem (claims, paths, validator)."""

import pytest

from repro.report import (
    Grade,
    PAPER_CLAIMS,
    PaperClaim,
    ReportValidator,
    Tolerance,
    ascii_sketch,
    grade_claim,
    render_markdown,
    render_svg,
    resolve_path,
)
from repro.report.paths import MetricPathError
from repro.report.validate import select_claims
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor


def _custom_rows(n=3):
    """Module-level experiment function for custom-catalog tests (picklable)."""
    return [{"value": i} for i in range(n)]


ROWS = [
    {"topology": "mesh", "geomean": 1.0, "area": 3.51, "cores": 64},
    {"topology": "fbfly", "geomean": 1.246, "area": 34.86, "cores": 64},
    {"topology": "nocout", "geomean": 1.178, "area": 2.91, "cores": 64},
]
ENVELOPE = {
    "rows": ROWS,
    "data": {
        "selected_cores": 16,
        "stats": {"frontier_size": 5},
        "knees": {"40nm / ooo": {"candidate": "ooo/16"}},
        "sweep": ROWS,
    },
}


def value_claim(expected, rel=None, abs=None, warn_factor=3.0,
                metric="rows[topology=fbfly].geomean"):
    return PaperClaim(
        claim_id="t-value", experiment_id="figure_4_6", source="Figure 4.6",
        description="test", metric=metric, kind="value", expected=expected,
        tolerance=Tolerance(rel=rel, abs=abs, warn_factor=warn_factor),
    )


# ------------------------------------------------------------- metric paths
class TestMetricPaths:
    def test_unique_row_selection(self):
        assert resolve_path(ENVELOPE, "rows[topology=mesh].area") == 3.51

    def test_multi_key_selection_parses_literals(self):
        assert resolve_path(ENVELOPE, "rows[topology=nocout,cores=64].geomean") == 1.178

    def test_aggregate_over_all_rows(self):
        assert resolve_path(ENVELOPE, "rows.geomean:max") == 1.246
        assert resolve_path(ENVELOPE, "rows.geomean:count") == 3

    def test_aggregate_over_filtered_rows(self):
        assert resolve_path(ENVELOPE, "rows[cores=64].area:min") == 2.91

    def test_data_traversal_and_quoted_keys(self):
        assert resolve_path(ENVELOPE, "data.selected_cores") == 16
        assert resolve_path(ENVELOPE, "data.stats.frontier_size") == 5
        assert resolve_path(ENVELOPE, 'data.knees["40nm / ooo"].candidate') == "ooo/16"
        assert resolve_path(ENVELOPE, "data.sweep[1].topology") == "fbfly"

    def test_missing_row_column_and_key(self):
        with pytest.raises(MetricPathError):
            resolve_path(ENVELOPE, "rows[topology=ring].area")
        with pytest.raises(MetricPathError):
            resolve_path(ENVELOPE, "rows[topology=mesh].nope")
        with pytest.raises(MetricPathError):
            resolve_path(ENVELOPE, "data.nope")

    def test_ambiguous_selection_needs_aggregate(self):
        with pytest.raises(MetricPathError, match="ambiguous"):
            resolve_path(ENVELOPE, "rows.geomean")

    def test_bad_root_and_bad_aggregate(self):
        with pytest.raises(MetricPathError):
            resolve_path(ENVELOPE, "columns.x")
        with pytest.raises(MetricPathError):
            resolve_path(ENVELOPE, "rows.geomean:median")


# -------------------------------------------------------- tolerance grading
class TestToleranceGrading:
    def test_exact_match_with_no_tolerance(self):
        graded = grade_claim(value_claim(1.246), ENVELOPE)
        assert graded.grade is Grade.PASS
        assert graded.detail == "exact match"

    def test_exact_claim_fails_on_any_deviation(self):
        graded = grade_claim(value_claim(1.247), ENVELOPE)
        assert graded.grade is Grade.FAIL

    def test_relative_bound(self):
        assert grade_claim(value_claim(1.24, rel=0.01), ENVELOPE).grade is Grade.PASS
        # Δ=0.026 vs band 0.0122: within 3x -> warn.
        assert grade_claim(value_claim(1.22, rel=0.01), ENVELOPE).grade is Grade.WARN
        assert grade_claim(value_claim(1.0, rel=0.01), ENVELOPE).grade is Grade.FAIL

    def test_absolute_bound(self):
        assert grade_claim(value_claim(1.2, abs=0.05), ENVELOPE).grade is Grade.PASS
        assert grade_claim(value_claim(1.14, abs=0.05), ENVELOPE).grade is Grade.WARN
        assert grade_claim(value_claim(0.9, abs=0.05), ENVELOPE).grade is Grade.FAIL

    def test_wider_bound_wins_when_both_given(self):
        # rel band 0.0124 would warn; abs band 0.1 passes.
        graded = grade_claim(value_claim(1.19, rel=0.01, abs=0.1), ENVELOPE)
        assert graded.grade is Grade.PASS

    def test_warn_factor_widens_the_warn_band(self):
        assert grade_claim(value_claim(1.0, rel=0.01, warn_factor=25.0),
                           ENVELOPE).grade is Grade.WARN

    def test_missing_metric_path_grades_fail_not_crash(self):
        graded = grade_claim(value_claim(1.0, metric="rows[topology=ring].geomean"),
                             ENVELOPE)
        assert graded.grade is Grade.FAIL
        assert graded.actual is None
        assert "no row matches" in graded.detail

    def test_non_numeric_actual_fails(self):
        graded = grade_claim(value_claim(1.0, metric="rows[topology=mesh].topology"),
                             ENVELOPE)
        assert graded.grade is Grade.FAIL

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            Tolerance(rel=-0.1)
        with pytest.raises(ValueError):
            Tolerance(warn_factor=0.5)
        with pytest.raises(ValueError):
            value_claim("not-a-number")


# ------------------------------------------------------ qualitative relations
class TestRelations:
    def relation(self, metric, op, expected=None, rhs_metric=None, **kwargs):
        return PaperClaim(
            claim_id="t-rel", experiment_id="figure_4_6", source="Figure 4.6",
            description="test", metric=metric, kind="relation", op=op,
            expected=expected, rhs_metric=rhs_metric, **kwargs,
        )

    def test_metric_vs_metric(self):
        claim = self.relation("rows[topology=fbfly].geomean", ">",
                              rhs_metric="rows[topology=mesh].geomean")
        graded = grade_claim(claim, ENVELOPE)
        assert graded.grade is Grade.PASS
        assert "holds" in graded.detail

    def test_metric_vs_literal_violated(self):
        claim = self.relation("rows[topology=fbfly].geomean", "<", expected=1.0)
        graded = grade_claim(claim, ENVELOPE)
        assert graded.grade is Grade.FAIL
        assert "violated" in graded.detail

    def test_violation_can_downgrade_to_warn(self):
        claim = self.relation("rows[topology=fbfly].geomean", "<", expected=1.0,
                              on_violation="warn")
        assert grade_claim(claim, ENVELOPE).grade is Grade.WARN

    def test_float_equality_uses_tolerance(self):
        claim = self.relation("rows[topology=fbfly].geomean", "==", expected=1.25,
                              tolerance=Tolerance(rel=0.01))
        assert grade_claim(claim, ENVELOPE).grade is Grade.PASS

    def test_exact_equality_on_ints_and_strings(self):
        assert grade_claim(self.relation("data.selected_cores", "==", expected=16),
                           ENVELOPE).grade is Grade.PASS
        assert grade_claim(
            self.relation('data.knees["40nm / ooo"].candidate', "==",
                          expected="ooo/16"), ENVELOPE).grade is Grade.PASS

    def test_incomparable_types_fail(self):
        claim = self.relation("rows[topology=mesh].topology", "<", expected=1.0)
        assert grade_claim(claim, ENVELOPE).grade is Grade.FAIL

    def test_missing_rhs_metric_grades_fail(self):
        claim = self.relation("rows[topology=mesh].geomean", "<",
                              rhs_metric="rows[topology=ring].geomean")
        assert grade_claim(claim, ENVELOPE).grade is Grade.FAIL

    def test_relation_needs_exactly_one_rhs(self):
        with pytest.raises(ValueError):
            self.relation("rows[topology=mesh].geomean", "<")
        with pytest.raises(ValueError):
            self.relation("rows[topology=mesh].geomean", "<", expected=1.0,
                          rhs_metric="rows[topology=fbfly].geomean")
        with pytest.raises(ValueError):
            self.relation("rows[topology=mesh].geomean", "~", expected=1.0)


# ----------------------------------------------------------------- registry
class TestRegistry:
    def test_at_least_twenty_claims_spanning_chapters_2_to_11(self):
        from repro.report import claimed_catalog

        catalog = claimed_catalog()
        claims = catalog.claims()
        assert len(claims) >= 20
        chapters = {catalog.get(c.experiment_id).chapter for c in claims}
        assert chapters == {2, 3, 4, 5, 6, 7, 8, 9, 10, 11}

    def test_registration_is_idempotent(self):
        from repro.report import claimed_catalog

        first = len(claimed_catalog().claims())
        assert len(claimed_catalog().claims()) == first

    def test_claim_ids_are_unique(self):
        ids = [claim.claim_id for claim in PAPER_CLAIMS]
        assert len(ids) == len(set(ids))

    def test_attach_claims_validates(self):
        from repro.runtime import SpecCatalog, UnknownExperimentError

        catalog = SpecCatalog()
        orphan = PaperClaim(
            claim_id="x", experiment_id="nope", source="s", description="d",
            metric="rows.x:max", kind="relation", op="<", expected=1.0,
        )
        with pytest.raises(UnknownExperimentError):
            catalog.attach_claims([orphan])


# ---------------------------------------------------------------- validator
def cheap_validator(executor=None, cache=None):
    """Validator over the cheap chapter-4 claims only (no 10s experiments)."""
    return ReportValidator(cache=cache or ResultCache(), executor=executor)


class TestValidator:
    def test_chapter_filter_grades_all_pass(self):
        run = cheap_validator().validate(only=["chapter4"])
        assert run.graded and run.ok
        assert all(g.grade in (Grade.PASS, Grade.WARN) for g in run.graded)
        assert set(run.summary()["chapters"]) == {4}

    def test_serial_and_parallel_grade_identically(self):
        cache_a, cache_b = ResultCache(), ResultCache()
        serial = cheap_validator(SweepExecutor(mode="serial"), cache_a).validate(
            only=["chapter4", "chapter2"]
        )
        parallel = cheap_validator(
            SweepExecutor(mode="process", max_workers=2), cache_b
        ).validate(only=["chapter4", "chapter2"])
        assert [g.claim.claim_id for g in serial.graded] == [
            g.claim.claim_id for g in parallel.graded
        ]
        assert [(g.grade, g.actual, g.detail) for g in serial.graded] == [
            (g.grade, g.actual, g.detail) for g in parallel.graded
        ]

    def test_warm_cache_serves_every_experiment(self):
        cache = ResultCache()
        validator = cheap_validator(cache=cache)
        cold = validator.validate(only=["chapter4"])
        assert {c.cache_status for c in cold.experiments} == {"miss"}
        warm = validator.validate(only=["chapter4"])
        assert {c.cache_status for c in warm.experiments} == {"hit"}
        assert [(g.grade, g.actual) for g in cold.graded] == [
            (g.grade, g.actual) for g in warm.graded
        ]

    def test_cache_disabled_statuses(self):
        run = ReportValidator(cache=ResultCache(), use_cache=False).validate(
            only=["figure_4_7"]
        )
        assert {c.cache_status for c in run.experiments} == {"disabled"}

    def test_unknown_only_token_rejected(self):
        # ValueError, not SystemExit: validate() is a library API and must
        # stay catchable by programmatic callers.
        with pytest.raises(ValueError, match="matches no chapter"):
            cheap_validator().validate(only=["chapter99-nope"])
        # Numeric tokens are validated against the catalog's chapters too.
        with pytest.raises(ValueError, match="names no catalogued chapter"):
            cheap_validator().validate(only=["chapter12"])

    def test_select_claims_by_experiment_and_claim_id(self):
        from repro.report import claimed_catalog

        catalog = claimed_catalog()
        by_experiment = select_claims(catalog, ["figure_4_6"])
        assert by_experiment and all(
            c.experiment_id == "figure_4_6" for c in by_experiment
        )
        by_claim = select_claims(catalog, ["ch4-snoops-rare"])
        assert [c.claim_id for c in by_claim] == ["ch4-snoops-rare"]

    def test_failing_claim_flips_ok_off(self):
        from repro.experiments.registry import CATALOG
        from repro.runtime import SpecCatalog

        catalog = SpecCatalog([CATALOG.get("figure_4_7")])
        catalog.attach_claims([
            PaperClaim(
                claim_id="t-off", experiment_id="figure_4_7", source="s",
                description="d", metric="rows[topology=mesh].total_mm2",
                kind="value", expected=999.0, tolerance=Tolerance(rel=0.01),
            ),
            PaperClaim(
                claim_id="t-missing", experiment_id="figure_4_7", source="s",
                description="d", metric="rows[topology=ring].total_mm2",
                kind="relation", op="<", expected=1.0,
            ),
        ])
        run = ReportValidator(catalog=catalog, cache=ResultCache()).validate()
        assert not run.ok
        assert run.summary()["fail"] == 2
        assert "❌ fail" in render_markdown(run)

    def test_no_cache_forwards_use_evaluation_cache_to_explore_specs(self):
        from repro.experiments.registry import CATALOG

        validator = ReportValidator(cache=ResultCache(), use_cache=False)
        explore_spec = CATALOG.get("explore_pod_40nm")
        assert validator._job_overrides(explore_spec, {}) == {
            "use_evaluation_cache": False
        }
        # Specs without an internal evaluation cache get no extra overrides.
        assert validator._job_overrides(CATALOG.get("figure_4_7"), {}) == {}

    def test_disk_cache_forwards_evaluation_cache_to_explore_specs(self, tmp_path):
        from repro.experiments.registry import CATALOG

        cache = ResultCache(cache_dir=str(tmp_path))
        validator = ReportValidator(cache=cache)
        overrides = validator._job_overrides(CATALOG.get("explore_pod_40nm"), {})
        assert overrides["evaluation_cache"] is cache

    def test_custom_catalog_specs_resolve_without_global_registry(self):
        from repro.runtime import ExperimentSpec, SpecCatalog

        spec = ExperimentSpec(
            experiment_id="custom_exp", chapter=4, kind="study",
            function=_custom_rows, parameters={"n": 2},
        )
        catalog = SpecCatalog([spec])
        catalog.attach_claims([
            PaperClaim(
                claim_id="t-custom", experiment_id="custom_exp", source="s",
                description="d", metric="rows[value=1].value", kind="relation",
                op="==", expected=1,
            ),
        ])
        run = ReportValidator(catalog=catalog, cache=ResultCache()).validate()
        assert run.ok and run.graded[0].actual == 1

    def test_payload_shape(self):
        import json

        run = cheap_validator().validate(only=["figure_4_7"])
        payload = json.loads(json.dumps(run.payload()))
        assert payload["summary"]["claims"] == len(payload["claims"])
        assert payload["experiments"][0]["experiment_id"] == "figure_4_7"
        for item in payload["claims"]:
            assert item["grade"] in ("pass", "warn", "fail")


# ---------------------------------------------------------------- renderers
class TestRenderers:
    def test_markdown_is_deterministic_and_complete(self):
        validator = cheap_validator()
        run = validator.validate(only=["chapter4"])
        text = render_markdown(run)
        assert text == render_markdown(validator.validate(only=["chapter4"]))
        assert text.startswith("# Reproduction report")
        assert "## Chapter 4" in text and "✅ pass" in text
        for graded in run.graded:
            assert graded.claim.claim_id in text

    def test_ascii_sketch_scales_bars(self):
        run = cheap_validator().validate(only=["figure_4_7"])
        sketch = ascii_sketch(run.graded)
        lines = sketch.splitlines()
        assert lines and all("|" in line for line in lines)
        assert any("#" * 5 in line for line in lines)

    def test_svg_is_wellformed(self):
        import xml.etree.ElementTree as ET

        run = cheap_validator().validate(only=["chapter4"])
        svg = render_svg(4, run.graded)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        assert len(root) > 1
