"""Tests for the packet-level NoC simulator and its area/power models."""

import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.metrics import NocAreaModel, NocPowerModel
from repro.noc.network import NocConfig, NocNetwork
from repro.noc.packet import MessageClass, Packet
from repro.noc.simulation import PodNocStudy
from repro.noc.topology import build_flattened_butterfly, build_mesh, build_nocout
from repro.noc.traffic import BilateralTrafficGenerator
from repro.workloads import WorkloadSuite, get_workload


class TestTopologies:
    def test_mesh_structure(self):
        mesh = build_mesh(cores=64)
        assert len(mesh.core_nodes) == 64
        assert mesh.graph.number_of_nodes() == 64
        # Interior routers have 4 neighbours, corners 2.
        degrees = [mesh.graph.out_degree(n) for n in mesh.graph.nodes]
        assert max(degrees) == 4 and min(degrees) == 2

    def test_mesh_xy_routing_hop_count(self):
        mesh = build_mesh(cores=64)
        path = mesh.route(0, 63)  # corner to corner of an 8x8 grid
        assert len(path) - 1 == 14
        assert path[0] == 0 and path[-1] == 63

    def test_mesh_zero_load_latency_three_cycles_per_hop(self):
        mesh = build_mesh(cores=64)
        # One hop = router (2) + link (1) = 3 cycles, plus destination pipeline.
        latency = mesh.zero_load_latency(0, 1, flits=1)
        assert latency == pytest.approx(3 + 2)

    def test_fbfly_two_hop_routing(self):
        fbfly = build_flattened_butterfly(cores=64)
        for source, destination in ((0, 63), (5, 58), (7, 56)):
            assert len(fbfly.route(source, destination)) - 1 <= 2

    def test_fbfly_lower_average_hops_than_mesh(self):
        assert build_flattened_butterfly(64).average_hop_count() < build_mesh(64).average_hop_count()

    def test_nocout_structure(self):
        nocout = build_nocout(cores=64, llc_tiles=8)
        assert len(nocout.core_nodes) == 64
        assert len(nocout.llc_nodes) == 8
        assert set(nocout.core_nodes).isdisjoint(nocout.llc_nodes)

    def test_nocout_core_traffic_goes_through_llc(self):
        nocout = build_nocout(cores=64, llc_tiles=8)
        # Core-to-core routes must pass through the LLC region (no direct links).
        path = nocout.route(nocout.core_nodes[0], nocout.core_nodes[1])
        assert any(node in nocout.llc_nodes for node in path[1:-1]) or len(path) == 2

    def test_nocout_requires_divisible_cores(self):
        with pytest.raises(ValueError):
            build_nocout(cores=60, llc_tiles=8)

    @given(st.sampled_from([16, 32, 64]))
    def test_routes_are_connected_paths(self, cores):
        mesh = build_mesh(cores=cores)
        path = mesh.route(0, cores - 1)
        for a, b in zip(path[:-1], path[1:]):
            assert mesh.graph.has_edge(a, b)


class TestNocNetwork:
    def test_zero_load_single_packet(self):
        mesh = build_mesh(cores=16)
        network = NocNetwork(mesh)
        packet = Packet(source=0, destination=15, message_class=MessageClass.DATA_REQUEST, injection_time=0.0)
        arrival = network.send(packet)
        assert arrival == pytest.approx(mesh.zero_load_latency(0, 15, flits=1))
        assert packet.latency > 0
        assert network.average_hops() == len(mesh.route(0, 15)) - 1

    def test_contention_delays_second_packet(self):
        mesh = build_mesh(cores=16)
        network = NocNetwork(mesh)
        first = Packet(0, 3, MessageClass.RESPONSE, injection_time=0.0)
        second = Packet(0, 3, MessageClass.RESPONSE, injection_time=0.0, packet_id=1)
        network.send(first)
        network.send(second)
        assert second.latency > first.latency

    def test_response_longer_than_request(self):
        config = NocConfig(link_width_bits=128)
        assert config.flits_for(MessageClass.RESPONSE) > config.flits_for(MessageClass.DATA_REQUEST)
        narrow = NocConfig(link_width_bits=32)
        assert narrow.flits_for(MessageClass.RESPONSE) > config.flits_for(MessageClass.RESPONSE)

    def test_undelivered_packet_latency_raises(self):
        packet = Packet(0, 1, MessageClass.DATA_REQUEST, injection_time=0.0)
        with pytest.raises(ValueError):
            _ = packet.latency

    def test_run_sorts_by_injection_time(self):
        mesh = build_mesh(cores=16)
        network = NocNetwork(mesh)
        packets = [
            Packet(0, 5, MessageClass.DATA_REQUEST, injection_time=10.0, packet_id=1),
            Packet(1, 5, MessageClass.DATA_REQUEST, injection_time=0.0, packet_id=2),
        ]
        delivered = network.run(packets)
        assert len(delivered) == 2
        assert network.total_flit_hops() > 0


class TestTraffic:
    def test_bilateral_traffic_shape(self):
        mesh = build_mesh(cores=16)
        workload = get_workload("Web Search")
        generator = BilateralTrafficGenerator(mesh, workload, per_core_ipc=0.5, seed=2)
        packets = generator.generate(duration_cycles=2000)
        summary = generator.summarize(packets, 2000)
        assert summary.requests == summary.responses
        assert summary.snoops <= summary.requests * 0.1
        # Requests originate at cores and target LLC nodes.
        for packet in packets[:200]:
            if packet.message_class is MessageClass.DATA_REQUEST:
                assert packet.source in mesh.core_nodes
                assert packet.destination in mesh.llc_nodes

    def test_injection_rate_tracks_workload(self):
        mesh = build_mesh(cores=16)
        heavy = BilateralTrafficGenerator(mesh, get_workload("Data Serving"), per_core_ipc=0.5, seed=2)
        light = BilateralTrafficGenerator(mesh, get_workload("SAT Solver"), per_core_ipc=0.5, seed=2)
        assert heavy.injection_rate > light.injection_rate

    def test_invalid_arguments(self):
        mesh = build_mesh(cores=16)
        with pytest.raises(ValueError):
            BilateralTrafficGenerator(mesh, get_workload("Web Search"), per_core_ipc=0)
        generator = BilateralTrafficGenerator(mesh, get_workload("Web Search"))
        with pytest.raises(ValueError):
            generator.generate(duration_cycles=0)


class TestAreaAndPower:
    def test_figure_4_7_area_ordering(self):
        model = NocAreaModel()
        mesh = model.breakdown(build_mesh(64)).total_mm2
        fbfly = model.breakdown(build_flattened_butterfly(64)).total_mm2
        nocout = model.breakdown(build_nocout(64)).total_mm2
        # Paper: NOC-Out ~2.5 mm^2, mesh ~3.5 mm^2, flattened butterfly ~23 mm^2.
        assert nocout < mesh < fbfly
        assert fbfly > 6 * nocout
        assert 1.5 < nocout < 4.5
        assert 2.0 < mesh < 6.0

    def test_breakdown_components_positive(self):
        breakdown = NocAreaModel().breakdown(build_mesh(64))
        as_dict = breakdown.as_dict()
        assert all(v > 0 for k, v in as_dict.items())
        assert as_dict["total"] == pytest.approx(
            as_dict["links"] + as_dict["buffers"] + as_dict["crossbars"]
        )

    def test_width_for_area_budget(self):
        model = NocAreaModel()
        nocout_area = model.breakdown(build_nocout(64)).total_mm2
        width = model.width_for_area_budget(build_flattened_butterfly(64), nocout_area)
        assert width < 128
        with pytest.raises(ValueError):
            model.width_for_area_budget(build_mesh(64), 0.0)

    def test_power_below_two_watts(self):
        # Section 4.4.4: all three organizations dissipate below ~2 W.
        power_model = NocPowerModel()
        for topology in (build_mesh(64), build_flattened_butterfly(64), build_nocout(64)):
            power = power_model.average_power_w(topology, flit_hops=200_000, duration_cycles=20_000)
            assert 0.1 < power < 3.0


class TestPodNocStudy:
    @pytest.fixture(scope="class")
    def study(self):
        suite = WorkloadSuite((get_workload("Web Search"), get_workload("Media Streaming")))
        return PodNocStudy(duration_cycles=1500, suite=suite, seed=2)

    def test_figure_4_6_shape(self, study):
        normalized = study.normalized_performance(study.evaluate())
        fbfly = statistics.geometric_mean(list(normalized["fbfly"].values()))
        nocout = statistics.geometric_mean(list(normalized["nocout"].values()))
        # Paper: both beat the mesh by ~20%, and NOC-Out matches the fbfly.
        assert fbfly > 1.05
        assert nocout > 1.05
        assert abs(fbfly - nocout) < 0.25

    def test_media_streaming_uses_16_cores(self, study):
        assert study.active_cores_for(get_workload("Media Streaming")) == 16
        assert study.active_cores_for(get_workload("Web Search")) == 32

    def test_area_normalized_widths(self, study):
        widths = study.area_normalized_widths()
        assert widths["nocout"] == 128
        assert widths["fbfly"] < 128

    def test_figure_4_8_fbfly_collapses(self, study):
        widths = study.area_normalized_widths()
        fixed = study.normalized_performance(study.evaluate(link_width_bits_by_topology=widths))
        full = study.normalized_performance(study.evaluate())
        fbfly_fixed = statistics.geometric_mean(list(fixed["fbfly"].values()))
        fbfly_full = statistics.geometric_mean(list(full["fbfly"].values()))
        assert fbfly_fixed < fbfly_full
