"""Tests for the 3D stacking strategies and design study (Chapter 6)."""

import pytest

from repro.core.pod import Pod
from repro.perfmodel.analytic import AnalyticPerformanceModel
from repro.three_d.designer import CONSTRAINTS_3D, ThreeDDesignStudy
from repro.three_d.stacking import (
    StackedPod,
    StackingStrategy,
    stack_fixed_distance,
    stack_fixed_pod,
)
from repro.workloads import WorkloadSuite, get_workload


@pytest.fixture(scope="module")
def suite():
    return WorkloadSuite((get_workload("Web Search"), get_workload("MapReduce-C")))


@pytest.fixture(scope="module")
def model():
    return AnalyticPerformanceModel()


@pytest.fixture(scope="module")
def base_pod():
    return Pod(cores=16, core_type="ooo", llc_capacity_mb=2, interconnect="crossbar")


class TestStackedPod:
    def test_fixed_pod_keeps_resources(self, base_pod):
        stacked = stack_fixed_pod(base_pod, 4)
        assert stacked.cores == base_pod.cores
        assert stacked.llc_capacity_mb == base_pod.llc_capacity_mb
        assert stacked.footprint_mm2 == pytest.approx(base_pod.area_mm2 / 4)
        assert stacked.total_silicon_mm2 == pytest.approx(base_pod.area_mm2)

    def test_fixed_distance_scales_resources(self, base_pod):
        stacked = stack_fixed_distance(base_pod, 4)
        assert stacked.cores == 4 * base_pod.cores
        assert stacked.llc_capacity_mb == pytest.approx(4 * base_pod.llc_capacity_mb)
        assert stacked.footprint_mm2 == pytest.approx(base_pod.area_mm2)

    def test_single_die_equivalent_for_both_strategies(self, base_pod, model, suite):
        fixed = stack_fixed_pod(base_pod, 1)
        distance = stack_fixed_distance(base_pod, 1)
        assert fixed.performance(model, suite) == pytest.approx(distance.performance(model, suite))
        assert fixed.footprint_mm2 == pytest.approx(distance.footprint_mm2)

    def test_fixed_pod_latency_shrinks_with_dies(self, base_pod, model):
        one = stack_fixed_pod(base_pod, 1).network_latency_cycles(model)
        four = stack_fixed_pod(base_pod, 4).network_latency_cycles(model)
        assert four <= one
        assert four >= 4.0

    def test_fixed_distance_latency_constant(self, base_pod, model):
        one = stack_fixed_distance(base_pod, 1).network_latency_cycles(model)
        four = stack_fixed_distance(base_pod, 4).network_latency_cycles(model)
        assert four == pytest.approx(one)

    def test_3d_pd_improves_over_2d(self, base_pod, model, suite):
        # Section 6.6: stacking improves performance density (modestly).
        pd_2d = stack_fixed_pod(base_pod, 1).performance_density(model, suite)
        pd_fixed_pod = stack_fixed_pod(base_pod, 2).performance_density(model, suite)
        pd_fixed_distance = stack_fixed_distance(base_pod, 2).performance_density(model, suite)
        assert pd_fixed_pod >= pd_2d * 0.999
        assert pd_fixed_distance >= pd_2d * 0.999

    def test_describe_labels(self, base_pod):
        label = stack_fixed_distance(base_pod, 2).describe()
        assert "32c" in label and "L=2" in label and "fixed-distance" in label

    def test_validation(self, base_pod):
        with pytest.raises(ValueError):
            StackedPod(base_pod=base_pod, num_dies=0)


class TestThreeDDesignStudy:
    def test_sweep_produces_points(self, suite):
        study = ThreeDDesignStudy(suite=suite)
        points = study.sweep(core_counts=(8, 16), llc_sizes_mb=(2.0, 4.0), num_dies=2)
        assert len(points) == 4
        assert all(p.performance_density > 0 for p in points)

    def test_compare_strategies_rows(self, suite, base_pod):
        study = ThreeDDesignStudy(suite=suite)
        points = study.compare_strategies(base_pod, (1, 2))
        strategies = {(p.stacked_pod.num_dies, p.stacked_pod.strategy) for p in points}
        assert (1, StackingStrategy.FIXED_POD) in strategies
        assert (2, StackingStrategy.FIXED_DISTANCE) in strategies

    def test_best_strategy_respects_bandwidth(self, suite, base_pod):
        study = ThreeDDesignStudy(suite=suite)
        best = study.best_strategy(base_pod, 2)
        assert best.performance_density > 0

    def test_compose_chip_within_3d_budgets(self, suite, base_pod):
        study = ThreeDDesignStudy(suite=suite)
        chip = study.compose_chip(stack_fixed_pod(base_pod, 2))
        assert chip.num_dies == 2
        assert chip.memory_channels <= CONSTRAINTS_3D.max_memory_channels
        assert chip.die_area_mm2 <= CONSTRAINTS_3D.max_area_mm2 * 1.01
        assert chip.power_w <= CONSTRAINTS_3D.max_power_w

    def test_more_dies_more_pods_or_larger_pods(self, suite, base_pod):
        study = ThreeDDesignStudy(suite=suite)
        chip_1 = study.compose_chip(stack_fixed_pod(base_pod, 1))
        chip_4 = study.compose_chip(stack_fixed_pod(base_pod, 4))
        total_1 = chip_1.total_cores
        total_4 = chip_4.total_cores
        assert total_4 >= total_1

    def test_specification_table_structure(self, suite):
        study = ThreeDDesignStudy(suite=suite)
        rows = study.specification_table(core_type="ooo", die_counts=(1, 2))
        assert len(rows) == 3  # 2D pod, fixed-pod(2), fixed-distance(2)
        for row in rows:
            assert row["performance_density"] > 0
            assert row["pods"] >= 1
