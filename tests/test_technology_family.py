"""Conformance suite for the derived technology-node family.

Three layers of protection around :mod:`repro.technology.family`:

* **Frozen regression vectors** -- literal copies of the legacy hand-written
  40/32/20 nm constants; the derived family must reproduce them
  field-for-field, byte-identically (exact float equality, not approx).
* **Scaling-law properties** (hypothesis, derandomized so every run draws the
  same examples) -- monotonicity of area/power as the feature size shrinks,
  the analog non-scaling invariant, composition of :func:`scale_area` /
  :func:`scale_power` with the per-node factors, die-budget validity on every
  node, and deterministic extrapolation flagging outside the calibrated band.
* **Pinned downstream goldens** -- figure 4.6 and the seeded
  ``explore_pod_40nm`` sample, captured before the family refactor; any drift
  in these means the derivation changed observable results.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.dse.studies import explore_pod_40nm
from repro.experiments.chapter4 import figure_4_6_noc_performance
from repro.experiments.technology import node_pod_selection, node_sram_scaling
from repro.runtime.executor import SERIAL_EXECUTOR, SweepExecutor
from repro.technology.components import catalog_for_node
from repro.technology.family import (
    ANCHOR_FEATURE_NM,
    DEFAULT_FAMILY,
    FAMILY_NODE_NAMES,
    PAPER_DIE_CONSTRAINTS,
    SCALING_RULES,
    NodeFamily,
    NodeRecipe,
    ScalingRule,
    derive_node,
    node_provenance,
)
from repro.technology.node import (
    NODE_20NM,
    NODE_32NM,
    NODE_40NM,
    ChipConstraints,
    TechnologyNode,
    coerce_node,
    get_node,
    scale_area,
    scale_power,
)

#: Property tests draw the same examples on every run (fixed-seed suite).
DETERMINISTIC = settings(derandomize=True, max_examples=50, deadline=None)

#: Literal copies of the constants node.py declared before the family
#: refactor.  The expressions (not just the rounded decimals) are frozen so
#: the comparison is against the exact floats the legacy module produced.
LEGACY_CONSTRAINTS = ChipConstraints(
    max_area_mm2=280.0, max_power_w=95.0, max_memory_channels=6
)
LEGACY_NODES = {
    "40nm": TechnologyNode(
        name="40nm", feature_nm=40, vdd=0.9, frequency_ghz=2.0,
        logic_area_scale=1.0, logic_power_scale=1.0, analog_area_scale=1.0,
        memory_standard="DDR3", constraints=LEGACY_CONSTRAINTS,
    ),
    "32nm": TechnologyNode(
        name="32nm", feature_nm=32, vdd=0.9, frequency_ghz=2.0,
        logic_area_scale=0.64, logic_power_scale=0.85, analog_area_scale=1.0,
        memory_standard="DDR3", constraints=LEGACY_CONSTRAINTS,
    ),
    "20nm": TechnologyNode(
        name="20nm", feature_nm=20, vdd=0.8, frequency_ghz=2.0,
        logic_area_scale=0.25,
        logic_power_scale=0.25 * (0.8 / 0.9) ** 2,
        analog_area_scale=1.0,
        memory_standard="DDR4", constraints=LEGACY_CONSTRAINTS,
    ),
}

FAMILY_NODES = DEFAULT_FAMILY.nodes()


class TestFrozenLegacyConstants:
    @pytest.mark.parametrize("name", sorted(LEGACY_NODES))
    def test_derived_nodes_are_byte_identical(self, name):
        derived = get_node(name)
        frozen = LEGACY_NODES[name]
        for field in dataclasses.fields(TechnologyNode):
            derived_value = getattr(derived, field.name)
            frozen_value = getattr(frozen, field.name)
            # Exact equality on purpose: floats must match bit-for-bit.
            assert derived_value == frozen_value, (
                f"{name}.{field.name}: derived {derived_value!r} "
                f"!= legacy {frozen_value!r}"
            )
        assert derived == frozen
        assert repr(derived) == repr(frozen)

    def test_pinned_module_constants_resolve_to_family(self):
        assert NODE_40NM is get_node("40nm") is DEFAULT_FAMILY.node(40)
        assert NODE_32NM is get_node(32)
        assert NODE_20NM is get_node("20")

    def test_lookup_spellings_share_one_instance(self):
        assert (
            get_node("40nm") is get_node("40") is get_node(40)
            is get_node(40.0) is get_node(" 40NM ")
        )
        assert coerce_node(NODE_40NM) is NODE_40NM


class TestFamilyStructure:
    def test_family_spans_90_to_7(self):
        assert tuple(DEFAULT_FAMILY.names) == FAMILY_NODE_NAMES
        assert FAMILY_NODE_NAMES == (
            "90nm", "65nm", "40nm", "32nm", "28nm", "20nm", "14nm", "10nm", "7nm"
        )
        assert len(DEFAULT_FAMILY) == 9
        assert DEFAULT_FAMILY.features == sorted(DEFAULT_FAMILY.features, reverse=True)

    def test_contains_and_rejections(self):
        assert "40nm" in DEFAULT_FAMILY and 7 in DEFAULT_FAMILY
        assert "5nm" not in DEFAULT_FAMILY
        assert True not in DEFAULT_FAMILY  # bools are not feature sizes
        assert 40.5 not in DEFAULT_FAMILY

    def test_unknown_key_enumerates_registry(self):
        with pytest.raises(KeyError) as excinfo:
            get_node("5nm")
        message = str(excinfo.value)
        for name in FAMILY_NODE_NAMES:
            assert name in message

    def test_family_validates_recipes(self):
        with pytest.raises(ValueError, match="at least one"):
            NodeFamily(recipes=())
        duplicate = (
            NodeRecipe(40, 0.9, "DDR3"),
            NodeRecipe(40, 0.8, "DDR4"),
        )
        with pytest.raises(ValueError, match="duplicate"):
            NodeFamily(recipes=duplicate)

    def test_rule_and_recipe_validation(self):
        with pytest.raises(ValueError, match="bounds"):
            ScalingRule("bad", "inverted", valid_from_nm=20, valid_to_nm=40)
        with pytest.raises(ValueError):
            NodeRecipe(0, 0.9, "DDR3")
        with pytest.raises(ValueError):
            NodeRecipe(40, -0.9, "DDR3")
        with pytest.raises(ValueError):
            NodeRecipe(40, 0.9, "DDR3", wire_delay_factor=0.0)


class TestScalingLawProperties:
    @DETERMINISTIC
    @given(
        pair=st.tuples(
            st.sampled_from(FAMILY_NODES), st.sampled_from(FAMILY_NODES)
        )
    )
    def test_area_and_power_monotone_in_feature_size(self, pair):
        older, newer = pair
        if older.feature_nm < newer.feature_nm:
            older, newer = newer, older
        assert newer.logic_area_scale <= older.logic_area_scale
        assert newer.logic_power_scale <= older.logic_power_scale
        assert newer.vdd <= older.vdd

    @DETERMINISTIC
    @given(
        node=st.sampled_from(FAMILY_NODES),
        figure=st.floats(min_value=0.01, max_value=500.0),
    )
    def test_analog_invariant(self, node, figure):
        assert node.analog_area_scale == 1.0
        assert scale_area(figure, node, analog=True) == figure
        assert scale_power(figure, node, analog=True) == figure

    @DETERMINISTIC
    @given(
        node=st.sampled_from(FAMILY_NODES),
        figure=st.floats(min_value=0.01, max_value=500.0),
    )
    def test_scaling_helpers_compose_with_node_factors(self, node, figure):
        assert scale_area(figure, node) == figure * node.logic_area_scale
        assert scale_power(figure, node) == figure * node.logic_power_scale

    @DETERMINISTIC
    @given(feature=st.integers(min_value=5, max_value=130))
    def test_derivation_follows_declared_laws(self, feature):
        recipe = NodeRecipe(feature, 0.9, "DDR3")
        node = derive_node(recipe)
        expected_area = round((feature / ANCHOR_FEATURE_NM) ** 2, 12)
        assert node.logic_area_scale == expected_area
        # Default capacitance follows the area law; at the anchor Vdd the
        # power scale collapses to the area scale exactly.
        assert node.logic_power_scale == expected_area * (0.9 / 0.9) ** 2
        assert node.analog_area_scale == 1.0
        assert node.name == f"{feature}nm"

    @DETERMINISTIC
    @given(node=st.sampled_from(FAMILY_NODES))
    def test_every_node_carries_valid_paper_budgets(self, node):
        assert node.constraints is PAPER_DIE_CONSTRAINTS
        assert node.constraints.max_area_mm2 == 280.0
        assert node.constraints.max_power_w == 95.0
        assert node.constraints.max_memory_channels == 6
        # The dataclass validator accepts them (re-constructing must not raise).
        ChipConstraints(
            node.constraints.max_area_mm2,
            node.constraints.max_power_w,
            node.constraints.max_memory_channels,
        )

    @DETERMINISTIC
    @given(node=st.sampled_from(FAMILY_NODES))
    def test_extrapolation_flags_are_deterministic(self, node):
        first = DEFAULT_FAMILY.extrapolated_rules(node)
        second = DEFAULT_FAMILY.extrapolated_rules(node.name)
        assert first == second
        expected = [
            rule.name for rule in SCALING_RULES if not rule.covers(node.feature_nm)
        ]
        assert first == expected
        assert DEFAULT_FAMILY.is_extrapolated(node) == bool(expected)

    def test_calibrated_band_is_the_paper_span(self):
        calibrated = [
            node.name for node in FAMILY_NODES
            if not DEFAULT_FAMILY.is_extrapolated(node)
        ]
        assert calibrated == ["40nm", "32nm", "28nm", "20nm"]
        # Analog non-scaling is the one rule stated without bounds.
        assert DEFAULT_FAMILY.extrapolated_rules("7nm") == [
            "logic_area", "vdd", "logic_power", "wires"
        ]

    def test_provenance_is_json_able_and_audits_the_derivation(self):
        record = node_provenance("7nm")
        json.dumps(record)  # must not raise
        assert record["node"] == "7nm"
        assert record["calibrated"] is False and record["extrapolated"] is True
        assert record["rules"]["analog_area"]["in_bounds"] is True
        assert record["rules"]["logic_area"]["in_bounds"] is False
        assert record["derived"]["logic_area_scale"] == get_node(7).logic_area_scale
        assert record["recipe"]["memory_standard"] == "DDR4"
        anchor = node_provenance(40)
        assert anchor["calibrated"] is True and anchor["extrapolated_rules"] == []


class TestCatalogAcrossFamily:
    #: Pinned OoO-core (area_mm2, power_w) per node, derived from Table 2.1's
    #: 4.5 mm^2 / 1.0 W by each node's scale factors (rounded to 6 decimals).
    OOO_CORE_PINS = {
        "90nm": (22.78125, 9.0),
        "65nm": (11.882812, 3.944637),
        "40nm": (4.5, 1.0),
        "32nm": (2.88, 0.85),
        "28nm": (2.205, 0.49),
        "20nm": (1.125, 0.197531),
        "14nm": (0.55125, 0.09679),
        "10nm": (0.28125, 0.043403),
        "7nm": (0.137813, 0.018526),
    }

    @pytest.mark.parametrize("name", sorted(OOO_CORE_PINS))
    def test_scaled_ooo_core_per_node(self, name):
        core = catalog_for_node(name).ooo_core
        area, power = self.OOO_CORE_PINS[name]
        assert round(core.area_mm2, 6) == area
        assert round(core.power_w, 6) == power

    def test_memory_interface_never_shrinks(self):
        for node in FAMILY_NODES:
            interface = catalog_for_node(node).memory_interface
            assert interface.area_mm2 == 12.0
            assert interface.power_w == pytest.approx(5.7)

    def test_memory_standard_split(self):
        for node in FAMILY_NODES:
            name = catalog_for_node(node).memory_interface.name
            if node.feature_nm >= 28:
                assert node.memory_standard == "DDR3" and name == "ddr3_interface"
            else:
                assert node.memory_standard == "DDR4" and name == "ddr4_interface"

    @pytest.mark.parametrize("node_name", ["90nm", "7nm"])
    def test_sram_estimates_monotone_in_capacity(self, node_name):
        rows = node_sram_scaling(nodes=(node_name,))
        areas = [row["area_mm2"] for row in rows]
        latencies = [row["access_latency_cycles"] for row in rows]
        assert areas == sorted(areas) and len(set(areas)) == len(areas)
        assert latencies == sorted(latencies)

    def test_sram_density_improves_with_node(self):
        at_90 = node_sram_scaling(nodes=("90nm",))[0]["area_mm2"]
        at_7 = node_sram_scaling(nodes=("7nm",))[0]["area_mm2"]
        assert at_7 < at_90


class TestNodeStudyExecutors:
    def test_pod_selection_serial_equals_parallel(self):
        nodes = ("90nm", "40nm", "7nm")
        serial = node_pod_selection(nodes=nodes, executor=SERIAL_EXECUTOR)
        parallel = node_pod_selection(nodes=nodes, executor=SweepExecutor(max_workers=2))
        assert serial == parallel
        assert [row["node"] for row in serial] == [
            "90nm", "90nm", "40nm", "40nm", "7nm", "7nm"
        ]


class TestDownstreamGoldens:
    """Pre-refactor goldens: the derived family must not move these numbers."""

    def test_figure_4_6_pinned(self):
        rows = {row["topology"]: row for row in figure_4_6_noc_performance()}
        assert rows["fbfly"]["geomean"] == 1.246
        assert rows["fbfly"]["Web Search"] == 1.287
        assert rows["fbfly"]["Data Serving"] == 1.396
        assert rows["nocout"]["geomean"] == 1.178
        assert rows["nocout"]["Web Search"] == 1.202
        assert rows["mesh"]["geomean"] == 1.0

    def test_explore_pod_40nm_seeded_sample_pinned(self):
        result = explore_pod_40nm(sample=24, seed=13, use_evaluation_cache=False)
        assert result["stats"]["space_size"] == 192
        assert result["stats"]["candidates"] == 24
        assert result["stats"]["evaluated"] == 24
        assert result["stats"]["feasible"] == 7
        assert result["stats"]["frontier_size"] == 2
        ooo = result["knees"]["ooo"]
        assert ooo["candidate"] == "ooo/16/4.0/crossbar/2/40nm"
        assert ooo["performance_density"] == 0.102865
        assert ooo["performance_per_tco"] == 490.076257
        assert result["knees"]["inorder"]["candidate"] == "inorder/8/4.0/crossbar/3/40nm"
        first = result["candidates"][0]
        assert first["candidate"] == "ooo/8/1.0/crossbar/4/40nm"
        assert first["performance_density"] == 0.089063
