"""Docstring coverage gate for the public entry points (tier-1 enforced).

Uses the stdlib checker in ``tools/check_docstrings.py`` (our
``interrogate --fail-under`` equivalent; CI also runs it as a dedicated step).
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from check_docstrings import audit_file, iter_python_files, main  # noqa: E402

#: Public entry points held to 100% docstring coverage.
ENFORCED = [
    REPO / "src" / "repro" / "runtime",
    REPO / "src" / "repro" / "obs",
    REPO / "src" / "repro" / "dse",
    REPO / "src" / "repro" / "report",
    REPO / "src" / "repro" / "service" / "cluster.py",
    REPO / "src" / "repro" / "noc" / "fastpath.py",
]


def test_enforced_modules_fully_documented():
    failures = []
    for target in ENFORCED:
        for path in iter_python_files([str(target)]):
            _, _, missing = audit_file(path)
            failures.extend(missing)
    assert not failures, "public APIs missing docstrings:\n" + "\n".join(failures)


def test_checker_cli_passes_on_enforced_targets(capsys):
    code = main(["--fail-under", "100", *[str(t) for t in ENFORCED]])
    out = capsys.readouterr().out
    assert code == 0
    assert "100.0%" in out


def test_checker_cli_fails_below_threshold(tmp_path, capsys):
    bad = tmp_path / "undocumented.py"
    bad.write_text("def exposed():\n    pass\n")
    code = main(["--fail-under", "100", str(bad)])
    captured = capsys.readouterr()
    assert code == 1
    assert "exposed" in captured.err
