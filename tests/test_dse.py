"""Tests for the design-space exploration engine (``repro.dse``)."""

import json

import pytest

from repro.dse import (
    Axis,
    Constraint,
    DesignSpace,
    EmptyDesignSpaceError,
    Explorer,
    Objective,
    dominates,
    explore_pod_40nm,
    explore_sla_sizing,
    frontier_2d,
    knee_point,
    pareto_frontier,
)
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor


def tiny_space(**overrides):
    axes = {
        "core_type": ("ooo",),
        "cores_per_pod": (8, 16),
        "llc_per_pod_mb": (2.0, 4.0),
        "pods_per_chip": (1, 2),
        "node": ("40nm",),
        "interconnect": ("crossbar",),
    }
    axes.update(overrides)
    return DesignSpace(axes=tuple(Axis(k, v) for k, v in axes.items()))


# --------------------------------------------------------------------- space
class TestDesignSpace:
    def test_size_and_enumeration_order(self):
        space = DesignSpace(
            axes=(Axis("a", (1, 2)), Axis("b", ("x", "y", "z")))
        )
        assert space.size == 6
        candidates = space.enumerate()
        assert candidates[0] == {"a": 1, "b": "x"}
        assert candidates[1] == {"a": 1, "b": "y"}  # row-major: last axis fastest
        assert candidates[-1] == {"a": 2, "b": "z"}

    def test_axis_validation(self):
        with pytest.raises(ValueError):
            Axis("empty", ())
        with pytest.raises(ValueError):
            Axis("dup", (1, 1))
        with pytest.raises(ValueError):
            DesignSpace(axes=(Axis("a", (1,)), Axis("a", (2,))))
        with pytest.raises(ValueError):
            DesignSpace(axes=())

    def test_parameter_constraints_prune(self):
        space = DesignSpace(
            axes=(Axis("a", (1, 2, 3)),),
            constraints=(Constraint("odd_only", lambda c: c["a"] % 2 == 1),),
        )
        assert [c["a"] for c in space.enumerate()] == [1, 3]

    def test_all_filtering_constraint_raises_clear_error(self):
        space = DesignSpace(
            axes=(Axis("a", (1, 2)),),
            constraints=(Constraint("impossible", lambda c: False),),
        )
        with pytest.raises(EmptyDesignSpaceError, match="impossible"):
            space.enumerate()

    def test_sample_is_seeded_and_order_preserving(self):
        space = DesignSpace(axes=(Axis("a", tuple(range(50))),))
        first = space.sample(10, seed=3)
        second = space.sample(10, seed=3)
        assert first == second
        values = [c["a"] for c in first]
        assert values == sorted(values)
        assert space.sample(99, seed=1) == space.enumerate()

    def test_unknown_axis_lookup(self):
        space = tiny_space()
        assert space.axis("node").values == ("40nm",)
        with pytest.raises(KeyError):
            space.axis("voltage")


# -------------------------------------------------------------------- pareto
MAX_A = Objective.maximize("a")
MAX_B = Objective.maximize("b")


class TestPareto:
    def test_dominates_requires_strict_improvement(self):
        assert dominates({"a": 2, "b": 2}, {"a": 1, "b": 2}, (MAX_A, MAX_B))
        assert not dominates({"a": 2, "b": 2}, {"a": 2, "b": 2}, (MAX_A, MAX_B))
        assert not dominates({"a": 2, "b": 1}, {"a": 1, "b": 2}, (MAX_A, MAX_B))

    def test_minimize_sense(self):
        low, high = {"cost": 1.0}, {"cost": 2.0}
        assert dominates(low, high, (Objective.minimize("cost"),))
        assert not dominates(high, low, (Objective.minimize("cost"),))

    def test_single_point_space_is_its_own_frontier(self):
        rows = [{"a": 1, "b": 1}]
        assert pareto_frontier(rows, (MAX_A, MAX_B)) == rows
        assert knee_point(rows, (MAX_A, MAX_B)) is rows[0]

    def test_all_dominated_set_collapses_to_the_dominator(self):
        rows = [
            {"a": 1, "b": 1},
            {"a": 2, "b": 2},
            {"a": 3, "b": 3},
        ]
        assert pareto_frontier(rows, (MAX_A, MAX_B)) == [{"a": 3, "b": 3}]

    def test_tie_on_one_objective_with_strict_other_dominates(self):
        # Tying on b while strictly better on a is still domination.
        rows = [{"a": 1.0, "b": 3.0}, {"a": 2.0, "b": 3.0}]
        assert pareto_frontier(rows, (MAX_A, MAX_B)) == [rows[1]]

    def test_tie_on_one_objective_incomparable_rows_survive(self):
        rows = [
            {"a": 1.0, "b": 3.0},  # best b
            {"a": 2.0, "b": 2.0},  # dominated: rows[2] ties its b, beats its a
            {"a": 2.5, "b": 2.0},  # best a
        ]
        frontier = pareto_frontier(rows, (MAX_A, MAX_B))
        assert frontier == [rows[0], rows[2]]

    def test_exact_duplicates_all_survive(self):
        rows = [{"a": 1, "b": 1}, {"a": 1, "b": 1}]
        assert pareto_frontier(rows, (MAX_A, MAX_B)) == rows

    def test_empty_input(self):
        assert pareto_frontier([], (MAX_A,)) == []
        assert knee_point([], (MAX_A,)) is None

    def test_group_by_partitions_dominance(self):
        rows = [
            {"g": "x", "a": 1},
            {"g": "x", "a": 2},
            {"g": "y", "a": 0.5},  # globally dominated, locally optimal
        ]
        assert pareto_frontier(rows, (MAX_A,)) == [rows[1]]
        assert pareto_frontier(rows, (MAX_A,), group_by="g") == [rows[1], rows[2]]

    def test_frontier_2d_sorted_by_x(self):
        rows = [
            {"a": 3.0, "b": 1.0},
            {"a": 1.0, "b": 3.0},
            {"a": 2.0, "b": 2.0},
            {"a": 0.5, "b": 0.5},  # dominated
        ]
        curve = frontier_2d(rows, MAX_A, MAX_B)
        assert [r["a"] for r in curve] == [1.0, 2.0, 3.0]

    def test_knee_picks_the_balanced_point(self):
        rows = [
            {"a": 0.0, "b": 1.0},
            {"a": 0.9, "b": 0.9},
            {"a": 1.0, "b": 0.0},
        ]
        assert knee_point(rows, (MAX_A, MAX_B)) == rows[1]

    def test_degenerate_objective_contributes_nothing(self):
        rows = [{"a": 1.0, "b": 5.0}, {"a": 2.0, "b": 5.0}]
        assert knee_point(rows, (MAX_A, MAX_B)) == rows[1]


# ------------------------------------------------------------------ explorer
class TestExplorer:
    def test_metric_constraint_filtering_everything_raises(self):
        explorer = Explorer(
            DesignSpace(
                axes=tiny_space().axes,
                metric_constraints=(Constraint("never", lambda m: False),),
            ),
            objectives=(Objective.maximize("performance_density"),),
            cache=ResultCache(),
        )
        with pytest.raises(EmptyDesignSpaceError, match="never"):
            explorer.explore()

    def test_warm_cache_performs_zero_reevaluations(self):
        cache = ResultCache()
        space = tiny_space()
        objectives = (Objective.maximize("performance_density"),)
        first = Explorer(space, objectives, cache=cache).explore()
        assert first.stats["evaluated"] == len(first.rows)
        second = Explorer(space, objectives, cache=cache).explore()
        assert second.stats["evaluated"] == 0
        assert second.stats["cache_hits"] == len(second.rows)
        assert second.rows == first.rows
        assert second.frontier == first.frontier

    def test_overlapping_space_deduplicates_through_cache(self):
        cache = ResultCache()
        objectives = (Objective.maximize("performance_density"),)
        Explorer(tiny_space(), objectives, cache=cache).explore()
        wider = tiny_space(cores_per_pod=(8, 16, 32))
        result = Explorer(wider, objectives, cache=cache).explore()
        assert result.stats["cache_hits"] == len(tiny_space().enumerate())
        assert result.stats["evaluated"] == len(result.rows) - result.stats["cache_hits"]

    def test_serial_and_parallel_exploration_identical(self):
        objectives = (
            Objective.maximize("performance_density"),
            Objective.maximize("performance_per_watt"),
        )
        serial = Explorer(
            tiny_space(),
            objectives,
            executor=SweepExecutor(mode="serial"),
            cache=ResultCache(),
        ).explore()
        parallel = Explorer(
            tiny_space(),
            objectives,
            executor=SweepExecutor(mode="process", max_workers=2),
            cache=ResultCache(),
        ).explore()
        assert serial.rows == parallel.rows
        assert serial.frontier == parallel.frontier
        assert serial.knees == parallel.knees

    def test_payload_is_json_serializable(self):
        result = Explorer(
            tiny_space(),
            (Objective.maximize("performance"),),
            cache=ResultCache(),
        ).explore()
        payload = json.loads(json.dumps(result.payload()))
        assert len(payload["candidates"]) == len(result.rows)
        assert payload["stats"]["frontier_size"] == len(payload["frontier"])
        assert all(row["on_frontier"] for row in payload["frontier"])

    def test_unknown_evaluator_rejected(self):
        with pytest.raises(KeyError):
            Explorer(tiny_space(), (Objective.maximize("x"),), evaluator="nope")


# ------------------------------------------------------------------- studies
class TestStudies:
    def test_pod_40nm_frontier_contains_paper_designs(self):
        payload = explore_pod_40nm(use_evaluation_cache=False)
        frontier_keys = {
            (r["core_type"], r["cores_per_pod"], r["llc_per_pod_mb"], r["pods_per_chip"])
            for r in payload["frontier"]
        }
        assert ("ooo", 16, 4.0, 2) in frontier_keys
        assert ("inorder", 32, 2.0, 3) in frontier_keys
        # Every candidate is reported, not just the frontier.
        assert len(payload["candidates"]) == payload["stats"]["candidates"]
        assert payload["stats"]["feasible"] < payload["stats"]["candidates"]

    def test_paper_design_self_check_lives_in_claims_registry(self):
        # The old ad-hoc `paper_designs` payload is gone: the chosen-design
        # self-check is now graded through the paper-claims registry.
        from repro.report import Grade, ReportValidator
        from repro.runtime.cache import ResultCache

        payload = explore_pod_40nm(use_evaluation_cache=False)
        assert "paper_designs" not in payload
        run = ReportValidator(cache=ResultCache()).validate(only=["explore_pod_40nm"])
        graded = {g.claim.claim_id: g.grade for g in run.graded}
        for claim_id in (
            "ch8-paper-ooo-on-frontier",
            "ch8-paper-inorder-on-frontier",
            "ch8-knee-ooo",
            "ch8-knee-inorder",
        ):
            assert graded[claim_id] is Grade.PASS

    def test_sla_sizing_filters_infeasible_and_trades_tco_for_latency(self):
        payload = explore_sla_sizing(
            core_types=("ooo",),
            cores_per_pod=(16,),
            llc_per_pod_mb=(4.0,),
            pods_per_chip=(1, 2),
            memory_gb=(64,),
            use_evaluation_cache=False,
        )
        rows = payload["candidates"]
        assert all(r["sla_feasible"] for r in rows if r["feasible"])
        frontier = payload["frontier"]
        assert frontier
        for row in frontier:
            assert row["p99_ms"] <= payload["sla_p99_ms"]
            assert row["monthly_tco_usd"] > 0

    def test_candidate_labels_distinguish_every_axis(self):
        # memory_gb is not a chip design knob but must still appear in the
        # label, or the sizing study's candidates collide.
        payload = explore_sla_sizing(
            core_types=("ooo",),
            cores_per_pod=(16,),
            llc_per_pod_mb=(4.0,),
            pods_per_chip=(1,),
            memory_gb=(32, 64),
            use_evaluation_cache=False,
        )
        labels = [row["candidate"] for row in payload["candidates"]]
        assert len(set(labels)) == len(labels)
        assert any("memory_gb=32" in label for label in labels)

    def test_sla_sizing_impossible_sla_raises_clear_error(self):
        with pytest.raises(EmptyDesignSpaceError, match="sla_feasible"):
            explore_sla_sizing(
                sla_p99_ms=1e-6,
                core_types=("ooo",),
                cores_per_pod=(16,),
                llc_per_pod_mb=(4.0,),
                pods_per_chip=(1,),
                memory_gb=(64,),
                use_evaluation_cache=False,
            )


# ------------------------------------------------------------------ runtime
class TestRuntimeIntegration:
    def test_explore_spec_runs_through_run_experiment_and_caches(self):
        from repro.experiments.registry import run_experiment

        cache = ResultCache()
        kwargs = dict(
            core_types=("ooo",),
            cores_per_pod=(8, 16),
            llc_per_pod_mb=(4.0,),
            pods_per_chip=(1, 2),
        )
        first = run_experiment("explore_pod_40nm", cache=cache, **kwargs)
        assert first.cache_status == "miss"
        assert first.rows  # candidates normalize to rows
        assert {"candidates", "frontier", "knees", "stats"} <= set(first.data)
        second = run_experiment("explore_pod_40nm", cache=cache, **kwargs)
        assert second.cache_status == "hit"
        assert second.data == first.data
