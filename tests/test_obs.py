"""Telemetry subsystem tests: spans, traces, envelopes, and the run ledger.

Covers the guarantees the observability layer advertises: nested spans are
well-formed, serial and parallel executions of the same sweep produce the
same trace *structure*, the disabled (null) tracer records nothing and leaves
simulation results bitwise identical, Chrome-trace exports satisfy the Trace
Event Format, and the JSONL ledger tolerates rotation and corruption.
"""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    Counter,
    Span,
    Tracer,
    chrome_trace,
    counter_deltas,
    get_tracer,
    telemetry_block,
    use_tracer,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.ledger import (
    append_record,
    invocation_record,
    ledger_path,
    read_records,
    rotate,
    summarize,
)
from repro.runtime.executor import SweepExecutor


def _square(value):
    """Module-level sweep point function (process-pool picklable)."""
    return value * value


# ---------------------------------------------------------------- span trees
class TestTracer:
    def test_nested_spans_are_well_formed(self):
        tracer = Tracer()
        with tracer.span("outer", category="test", level=0) as outer:
            with tracer.span("inner.a", category="test") as inner:
                inner.annotate(level=1)
            with tracer.span("inner.b", category="test"):
                pass
        assert tracer.current() is None
        assert [span.name for span in tracer.iter_spans()] == [
            "outer", "inner.a", "inner.b",
        ]
        assert outer.children[0].attributes == {"level": 1}
        for span in tracer.iter_spans():
            assert span.duration_s >= 0.0
            for child in span.children:
                assert child.start_s >= span.start_s

    def test_finalize_assigns_deterministic_tree_path_ids(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        with tracer.span("d"):
            pass
        tracer.finalize()
        assert [span.span_id for span in tracer.iter_spans()] == [
            "s0", "s0.0", "s0.1", "s1",
        ]
        tracer.finalize()  # idempotent
        assert tracer.roots[0].span_id == "s0"

    def test_counters_are_monotonic_and_sorted(self):
        tracer = Tracer()
        tracer.counter("b").add(2)
        tracer.counter("a").add()
        tracer.counter("b").add(3)
        assert tracer.counters() == {"a": 1, "b": 5}
        with pytest.raises(ValueError):
            Counter("x").add(-1)
        assert counter_deltas({"a": 5, "b": 1}, {"a": 2}) == {"a": 3, "b": 1}

    def test_adopt_shifts_and_merges(self):
        worker = Tracer()
        with worker.span("chunk"):
            worker.counter("points").add(4)
        parent = Tracer()
        with parent.span("map"):
            parent.adopt(worker.roots, worker.counters(), offset_s=10.0)
        assert parent.roots[0].children[0].name == "chunk"
        assert parent.roots[0].children[0].start_s >= 10.0
        assert parent.counters() == {"points": 4}

    def test_use_tracer_installs_and_restores(self):
        assert get_tracer() is NULL_TRACER
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER


class TestNullTracer:
    def test_null_tracer_records_nothing(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything", category="x", a=1) as span:
            span.annotate(b=2)  # discarded
            NULL_TRACER.counter("n").add(5)
        assert NULL_TRACER.counters() == {}
        assert NULL_TRACER.finalize() == []
        assert list(NULL_TRACER.iter_spans()) == []

    def test_executor_under_null_tracer_adds_zero_spans(self):
        executor = SweepExecutor(mode="serial")
        results = executor.map(_square, [(i,) for i in range(6)])
        assert results == [0, 1, 4, 9, 16, 25]
        assert list(get_tracer().iter_spans()) == []


# --------------------------------------------------- serial == parallel trace
class TestExecutorTraceStructure:
    def _traced_map(self, mode):
        tracer = Tracer()
        executor = SweepExecutor(mode=mode, max_workers=2, chunksize=3)
        with use_tracer(tracer):
            results = executor.map(_square, [(i,) for i in range(10)])
        tracer.finalize()
        return results, tracer

    def test_serial_and_parallel_traces_share_structure(self):
        serial_results, serial = self._traced_map("serial")
        parallel_results, parallel = self._traced_map("process")
        assert serial_results == parallel_results
        # `mode` (and the parallel-only `worker` tag) are the only attributes
        # allowed to differ between backends.
        prune = ("mode", "worker")
        serial_shape = [root.structure(prune) for root in serial.roots]
        parallel_shape = [root.structure(prune) for root in parallel.roots]
        assert serial_shape == parallel_shape
        assert [s.span_id for s in serial.iter_spans()] == [
            s.span_id for s in parallel.iter_spans()
        ]

    def test_trace_covers_every_point_in_index_order(self):
        _, tracer = self._traced_map("process")
        points = tracer.find_spans(name="executor.point")
        assert [span.attributes["index"] for span in points] == list(range(10))
        chunks = tracer.find_spans(name="executor.chunk")
        assert [span.attributes["first_point"] for span in chunks] == [0, 3, 6, 9]
        (map_span,) = tracer.find_spans(name="executor.map")
        assert map_span.attributes["points"] == 10
        assert map_span.attributes["chunks"] == 4


# ------------------------------------------------------------- chrome export
class TestChromeTrace:
    def _sample_tracer(self):
        tracer = Tracer()
        with tracer.span("outer", category="test"):
            with tracer.span("inner", category="test", worker=1):
                tracer.counter("events").add(3)
        return tracer

    def test_chrome_trace_validates_and_round_trips(self, tmp_path):
        tracer = self._sample_tracer()
        payload = chrome_trace(tracer)
        assert validate_chrome_trace(payload) == len(payload["traceEvents"])
        phases = {event["ph"] for event in payload["traceEvents"]}
        assert {"M", "X", "C"} <= phases
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert names == {"outer", "inner"}
        path = tmp_path / "trace.json"
        write_chrome_trace(path, tracer)
        assert validate_chrome_trace(json.loads(path.read_text())) > 0

    def test_worker_attribute_maps_to_thread_id(self):
        payload = chrome_trace(self._sample_tracer())
        tids = {e["name"]: e["tid"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert tids["inner"] != tids["outer"]

    def test_validate_rejects_malformed_payloads(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"not": "a trace"})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X", "name": "x"}]})


# ---------------------------------------------------------- telemetry blocks
class TestTelemetryBlock:
    def test_disabled_tracer_yields_no_block(self):
        assert telemetry_block(NULL_TRACER) is None

    def test_block_carries_counters_cache_and_phases(self):
        tracer = Tracer()
        with tracer.span("experiment.x", category="experiment") as span:
            with tracer.span("cache.fetch", category="cache"):
                tracer.counter("cache.result.hits").add(3)
                tracer.counter("cache.result.misses").add(1)
        block = telemetry_block(tracer, span=span)
        assert block["counters"] == {"cache.result.hits": 3, "cache.result.misses": 1}
        assert block["cache"]["result"] == {
            "hits": 3, "misses": 1, "stores": 0, "hit_ratio": 0.75,
        }
        assert [phase["name"] for phase in block["phases"]] == ["cache.fetch"]


# ------------------------------------------------------------------- results
class TestResultIdentity:
    def test_traced_and_untraced_runs_produce_identical_data(self):
        from repro.experiments.registry import run_experiment

        untraced = run_experiment("table_4_1", use_cache=False)
        with use_tracer(Tracer()):
            traced = run_experiment("table_4_1", use_cache=False)
        assert json.dumps(untraced.data, sort_keys=True) == json.dumps(
            traced.data, sort_keys=True
        )
        assert untraced.telemetry is None
        assert traced.telemetry is not None
        assert traced.compute_time_s > 0.0

    def test_untraced_envelope_has_no_telemetry_key(self):
        from repro.experiments.registry import run_experiment
        from repro.runtime.cli import _envelope

        envelope = _envelope(run_experiment("table_4_1", use_cache=False))
        assert "telemetry" not in envelope
        assert "compute_time_s" in envelope

    def test_cache_stats_exposed_without_tracer(self):
        from repro.runtime.cache import ResultCache

        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["categories"]["result"]["hits"] == 1

    def test_warm_evaluation_cache_hits_every_candidate(self):
        from repro.dse.pareto import Objective
        from repro.dse.explorer import Explorer
        from repro.dse.space import Axis, DesignSpace

        space = DesignSpace(
            axes=(Axis("cores_per_pod", (8, 16)), Axis("llc_per_pod_mb", (2.0, 4.0)))
        )
        explorer = Explorer(
            space,
            objectives=(Objective.minimize("die_area_mm2"),),
            evaluator="chip",
        )
        candidates = space.enumerate()
        explorer._evaluate(candidates)  # noqa: SLF001 - warm the cache
        tracer = Tracer()
        with use_tracer(tracer):
            _, hits = explorer._evaluate(candidates)  # noqa: SLF001
        assert hits == len(candidates)
        counters = tracer.counters()
        assert counters["cache.evaluation.hits"] == len(candidates)
        assert "cache.evaluation.misses" not in counters


# -------------------------------------------------------------------- ledger
class TestLedger:
    def _record(self, experiment="table_4_1", status="miss"):
        return invocation_record(
            "run",
            [{"experiment": experiment, "cache_status": status,
              "wall_time_s": 0.5, "compute_time_s": 0.4, "rows": 3}],
            argv=["run", experiment],
        )

    def test_append_and_read_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
        path = append_record(self._record())
        assert path == ledger_path()
        records = read_records()
        assert len(records) == 1
        record = records[0]
        assert record["command"] == "run"
        assert record["experiments"] == ["table_4_1"]
        assert record["cache_hit_ratio"] == 0.0
        assert record["schema"] == 1

    def test_rotation_bounds_the_file(self, tmp_path):
        directory = tmp_path / "ledger"
        for index in range(7):
            append_record(
                self._record(experiment=f"e{index}"),
                directory=directory,
                max_records=4,
            )
        records = read_records(ledger_path(directory))
        assert len(records) == 4
        assert [r["experiments"][0] for r in records] == ["e3", "e4", "e5", "e6"]
        assert rotate(ledger_path(directory), keep_last=2) == 2
        assert len(read_records(ledger_path(directory))) == 2

    def test_corrupt_lines_are_tolerated(self, tmp_path):
        directory = tmp_path / "ledger"
        append_record(self._record(experiment="good"), directory=directory)
        path = ledger_path(directory)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{truncated json\n")
            handle.write("[1, 2, 3]\n")  # valid JSON but not a record dict
        append_record(self._record(experiment="later"), directory=directory)
        records = read_records(path)
        assert [r["experiments"][0] for r in records] == ["good", "later"]

    def test_unwritable_directory_degrades_to_none(self, tmp_path):
        blocked = tmp_path / "file-not-dir"
        blocked.write_text("occupied")
        assert append_record(self._record(), directory=blocked) is None

    def test_summarize_and_filters(self, tmp_path):
        directory = tmp_path / "ledger"
        append_record(self._record(experiment="a", status="miss"), directory=directory)
        append_record(self._record(experiment="a", status="hit"), directory=directory)
        append_record(self._record(experiment="b", status="hit"), directory=directory)
        path = ledger_path(directory)
        assert len(read_records(path, experiment="a")) == 2
        assert len(read_records(path, last=1)) == 1
        summary = summarize(read_records(path))
        assert summary["invocations"] == 3
        assert summary["commands"] == {"run": 3}
        by_id = {row["experiment"]: row for row in summary["experiments"]}
        assert by_id["a"]["invocations"] == 2
        assert by_id["a"]["cache_hit_ratio"] == 0.5
        assert by_id["b"]["cache_hit_ratio"] == 1.0

    def test_explore_runs_roll_evaluation_hits_into_the_record(self):
        record = invocation_record(
            "explore",
            [{"experiment": "explore_pod_40nm", "cache_status": "miss",
              "wall_time_s": 2.0, "compute_time_s": 1.9, "rows": 64,
              "strategy": "ga", "cache_hits": 64, "evaluated": 0}],
        )
        assert record["strategy"] == "ga"
        assert record["cache_hits"] == 64
        assert record["cache_misses"] == 1  # the envelope-level miss
        assert record["cache_hit_ratio"] == round(64 / 65, 4)


# ------------------------------------------------------------ CLI round trip
class TestCliTelemetry:
    def test_trace_flag_emits_valid_trace_and_ledger_record(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.runtime.cli import main

        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
        trace_path = tmp_path / "trace.json"
        code = main(["run", "table_4_1", "--no-cache", "--json",
                     "--trace", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        envelope = json.loads(out)
        # --no-cache means no cache counters; the block itself must be there.
        assert set(envelope["telemetry"]) == {"counters", "cache", "phases"}
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) > 0
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert "cli.run" in names
        assert "experiment.table_4_1" in names
        records = read_records()
        assert len(records) == 1
        assert records[0]["command"] == "run"
        assert records[0]["argv"][:2] == ["run", "table_4_1"]

    def test_untraced_cli_restores_null_tracer_and_still_ledgers(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.runtime.cli import main

        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
        code = main(["run", "table_4_1", "--no-cache", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        assert "telemetry" not in json.loads(out)
        assert get_tracer() is NULL_TRACER
        assert len(read_records()) == 1

    def test_stats_summarizes_the_ledger(self, capsys, tmp_path, monkeypatch):
        from repro.runtime.cli import main

        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
        assert main(["run", "table_4_1", "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["stats", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["invocations"] == 1
        assert summary["experiments"][0]["experiment"] == "table_4_1"
        assert main(["stats", "--experiment", "nonexistent"]) == 1
