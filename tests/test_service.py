"""Tests for the datacenter service simulation subsystem."""

import math
import random

import pytest

from repro.service import (
    ClusterConfig,
    ClusterSizer,
    LatencyStats,
    MmkQueue,
    MmppArrivals,
    PoissonArrivals,
    SlaInfeasibleError,
    calibrate_chip,
    erlang_b,
    erlang_c,
    make_arrivals,
    make_balancer,
    make_service_time,
    saturation_qps,
    simulate_cluster,
)
from repro.tco.datacenter import DatacenterDesign
from repro.workloads.cloudsuite import WEB_SEARCH
from repro.workloads.suite import WorkloadSuite


def small_cluster(
    utilization,
    policy="jsq",
    num_servers=4,
    parallelism=4,
    service_mean_s=0.002,
    **overrides,
):
    return ClusterConfig(
        num_servers=num_servers,
        parallelism=parallelism,
        service_mean_s=service_mean_s,
        offered_qps=utilization * num_servers * parallelism / service_mean_s,
        policy=policy,
        **overrides,
    )


class TestArrivals:
    def test_poisson_mean_rate(self):
        rng = random.Random(7)
        gaps = PoissonArrivals(rate_rps=100.0).gaps(rng)
        total = sum(next(gaps) for _ in range(20_000))
        assert total == pytest.approx(200.0, rel=0.05)

    def test_poisson_seeded_streams_scale_with_rate(self):
        slow = PoissonArrivals(rate_rps=100.0).gaps(random.Random(3))
        fast = PoissonArrivals(rate_rps=400.0).gaps(random.Random(3))
        for _ in range(100):
            assert next(slow) == pytest.approx(4.0 * next(fast))

    def test_mmpp_mean_rate_and_phases(self):
        process = MmppArrivals(rate_rps=1000.0, burstiness=4.0, burst_fraction=0.2)
        assert process.burst_rate_rps == pytest.approx(4.0 * process.quiet_rate_rps)
        mix = 0.8 * process.quiet_rate_rps + 0.2 * process.burst_rate_rps
        assert mix == pytest.approx(1000.0)
        gaps = process.gaps(random.Random(11))
        total = sum(next(gaps) for _ in range(40_000))
        assert total == pytest.approx(40.0, rel=0.1)

    def test_mmpp_is_burstier_than_poisson(self):
        def cv_of_gaps(process, seed, n=20_000):
            gaps_iter = process.gaps(random.Random(seed))
            gaps = [next(gaps_iter) for _ in range(n)]
            mean = sum(gaps) / n
            var = sum((g - mean) ** 2 for g in gaps) / n
            return math.sqrt(var) / mean

        poisson_cv = cv_of_gaps(PoissonArrivals(rate_rps=1000.0), 5)
        mmpp_cv = cv_of_gaps(MmppArrivals(rate_rps=1000.0, burstiness=8.0), 5)
        assert poisson_cv == pytest.approx(1.0, rel=0.05)
        assert mmpp_cv > 1.1

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            make_arrivals("pareto", 100.0)


class TestServiceTimes:
    @pytest.mark.parametrize("name", ["deterministic", "exponential", "lognormal"])
    def test_sample_mean_matches(self, name):
        distribution = make_service_time(name, 0.004)
        rng = random.Random(13)
        samples = [distribution.sample(rng) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(0.004, rel=0.05)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown service distribution"):
            make_service_time("weibull", 0.004)


class TestLatencyStats:
    def test_percentiles_interpolate(self):
        stats = LatencyStats.from_iterable(float(i) for i in range(1, 101))
        assert stats.p50_s == pytest.approx(50.5)
        assert stats.percentile(0.0) == 1.0
        assert stats.percentile(1.0) == 100.0
        assert stats.p99_s == pytest.approx(99.01)

    def test_sla_predicate(self):
        stats = LatencyStats.from_iterable([1.0, 2.0, 3.0])
        assert stats.meets_sla(3.0)
        assert not stats.meets_sla(2.5)

    def test_empty_reports_nan_not_crash(self):
        """Zero-sample stats (e.g. a starved priority class) report NaN."""
        import math

        stats = LatencyStats(samples=())
        assert stats.count == 0
        assert math.isnan(stats.mean_s)
        assert math.isnan(stats.max_s)
        assert math.isnan(stats.p99_s)
        assert math.isnan(stats.percentile(0.5))
        assert not stats.meets_sla(1.0)
        assert all(math.isnan(v) for v in stats.summary().values())


class TestClusterSimulation:
    def test_same_seed_is_deterministic(self):
        config = small_cluster(0.8)
        a = simulate_cluster(config, num_requests=2_000, seed=9)
        b = simulate_cluster(config, num_requests=2_000, seed=9)
        assert a.latency.samples == b.latency.samples
        assert a.per_server_counts == b.per_server_counts

    def test_different_seeds_differ(self):
        config = small_cluster(0.8)
        a = simulate_cluster(config, num_requests=2_000, seed=9)
        b = simulate_cluster(config, num_requests=2_000, seed=10)
        assert a.latency.samples != b.latency.samples

    def test_warmup_excluded_from_stats(self):
        config = small_cluster(0.8, warmup_fraction=0.25)
        result = simulate_cluster(config, num_requests=2_000, seed=9)
        assert result.measured_requests == 1_500
        assert result.total_requests == 2_000

    def test_utilization_tracks_offered_load(self):
        result = simulate_cluster(small_cluster(0.6), num_requests=6_000, seed=4)
        assert result.mean_utilization == pytest.approx(0.6, rel=0.15)

    def test_mmk_mean_wait_matches_erlang_c(self):
        """M/M/4 at 70% utilization: simulated mean wait vs the closed form."""
        mu = 500.0
        queue = MmkQueue(servers=4, service_rate_rps=mu, arrival_rate_rps=0.7 * 4 * mu)
        config = small_cluster(0.7, num_servers=1, policy="random")
        result = simulate_cluster(config, num_requests=30_000, seed=5)
        simulated_wait = result.latency.mean_s - config.service_mean_s
        assert simulated_wait == pytest.approx(queue.mean_wait_s, rel=0.2)

    @pytest.mark.parametrize("policy", ["random", "round_robin", "po2", "jsq"])
    def test_all_policies_run_and_balance(self, policy):
        result = simulate_cluster(
            small_cluster(0.7, policy=policy), num_requests=2_000, seed=21
        )
        counts = result.per_server_counts
        assert len(counts) == 4  # every server saw traffic
        assert sum(counts.values()) == result.measured_requests

    def test_jsq_mean_latency_never_worse_than_random(self):
        """JSQ beats (or ties) random routing at equal load, across seeds."""
        for seed in (1, 2, 3, 17, 42):
            jsq = simulate_cluster(
                small_cluster(0.85, policy="jsq"), num_requests=4_000, seed=seed
            )
            rnd = simulate_cluster(
                small_cluster(0.85, policy="random"), num_requests=4_000, seed=seed
            )
            assert jsq.latency.mean_s <= rnd.latency.mean_s

    @pytest.mark.parametrize("policy", ["random", "round_robin", "po2", "jsq"])
    def test_fast_engine_matches_event_engine(self, policy):
        """The heap-recurrence fast engine reproduces the event engine exactly
        for every policy: same sorted latencies, counts, and duration."""
        import numpy as np

        config = small_cluster(0.85, policy=policy)
        fast = simulate_cluster(config, num_requests=2_500, seed=11, engine="fast")
        event = simulate_cluster(config, num_requests=2_500, seed=11, engine="event")
        assert np.array_equal(
            np.sort(np.array(fast.latency.samples)),
            np.sort(np.array(event.latency.samples)),
        )
        assert fast.per_server_counts == event.per_server_counts
        assert fast.duration_s == event.duration_s
        assert fast.latency.p99_s == event.latency.p99_s
        assert fast.mean_utilization == pytest.approx(event.mean_utilization)

    def test_auto_engine_selection(self):
        from repro.service.cluster import ClusterSimulation

        assert ClusterSimulation(small_cluster(0.5, policy="random")).resolved_engine() == "fast"
        # Since the balanced lazy-heap kernel landed, jsq/po2 run fast too.
        assert ClusterSimulation(small_cluster(0.5, policy="jsq")).resolved_engine() == "fast"
        assert ClusterSimulation(small_cluster(0.5, policy="po2")).resolved_engine() == "fast"
        assert (
            ClusterSimulation(small_cluster(0.5, policy="jsq"), engine="event").resolved_engine()
            == "event"
        )

    def test_engine_name_validation(self):
        from repro.service.cluster import ClusterSimulation

        # jsq/po2 are fast-capable now; only unknown engine names reject.
        ClusterSimulation(small_cluster(0.5, policy="jsq"), engine="fast")
        with pytest.raises(ValueError, match="engine must be"):
            ClusterSimulation(small_cluster(0.5), engine="warp")

    def test_p99_rises_with_offered_load(self):
        p99s = []
        for utilization in (0.5, 0.7, 0.9, 1.1):
            result = simulate_cluster(
                small_cluster(utilization, policy="round_robin"),
                num_requests=4_000,
                seed=42,
            )
            p99s.append(result.latency.p99_s)
        assert all(later >= earlier for earlier, later in zip(p99s, p99s[1:]))
        # Past saturation the open-loop queue grows without bound.
        assert p99s[-1] > 3.0 * p99s[0]


class TestErlang:
    def test_erlang_b_small_case(self):
        # B(2, 1) = (1/2) / (1 + 1 + 1/2) = 0.2
        assert erlang_b(2, 1.0) == pytest.approx(0.2)

    def test_erlang_c_single_server_is_rho(self):
        assert erlang_c(1, 0.3) == pytest.approx(0.3)

    def test_erlang_c_saturated_is_one(self):
        assert erlang_c(4, 4.0) == 1.0
        assert erlang_c(4, 5.0) == 1.0

    def test_mmk_latency_quantile_brackets_survival(self):
        queue = MmkQueue(servers=8, service_rate_rps=500.0, arrival_rate_rps=3_000.0)
        p99 = queue.latency_quantile(0.99)
        assert queue.latency_survival(p99) == pytest.approx(0.01, rel=1e-3)
        assert queue.latency_quantile(0.5) < p99

    def test_mmk_unstable_metrics_are_infinite(self):
        queue = MmkQueue(servers=2, service_rate_rps=100.0, arrival_rate_rps=300.0)
        assert math.isinf(queue.mean_wait_s)
        assert math.isinf(queue.latency_quantile(0.99))

    def test_saturation_qps_below_capacity(self):
        rate = saturation_qps(16, 500.0, sla_p99_s=0.02)
        assert 0.0 < rate < 16 * 500.0
        # A tighter SLA admits less load.
        assert saturation_qps(16, 500.0, sla_p99_s=0.012) < rate


class TestBalancers:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown balancer policy"):
            make_balancer("least_connections")

    def test_round_robin_cycles(self):
        balancer = make_balancer("round_robin")
        servers = [object()] * 3  # round robin never reads backlog
        rng = random.Random(0)
        assert [balancer.select(servers, rng) for _ in range(6)] == [0, 1, 2, 0, 1, 2]


class TestSizing:
    @pytest.fixture(scope="class")
    def sizer_setup(self):
        from repro.experiments.service import build_service_chip

        suite = WorkloadSuite((WEB_SEARCH,))
        chip = build_service_chip("Scale-Out (OoO)", suite)
        sizer = ClusterSizer(DatacenterDesign(suite=suite))
        return sizer, chip, WEB_SEARCH

    def test_sizing_meets_sla_at_minimum(self, sizer_setup):
        sizer, chip, workload = sizer_setup
        result = sizer.size(chip, workload, target_qps=500_000.0, sla_p99_s=0.025)
        assert result.p99_s <= 0.025
        assert result.utilization < 1.0
        # One server fewer must violate the SLA (or stability).
        if result.servers > 1:
            queue = sizer.server_queue(
                calibrate_chip(chip, workload),
                result.sockets_per_server,
                500_000.0 / (result.servers - 1),
            )
            assert queue.latency_quantile(0.99) > 0.025

    def test_more_qps_needs_at_least_as_many_servers(self, sizer_setup):
        sizer, chip, workload = sizer_setup
        servers = [
            sizer.size(chip, workload, target_qps=qps, sla_p99_s=0.025).servers
            for qps in (100_000.0, 300_000.0, 1_000_000.0, 3_000_000.0)
        ]
        assert servers == sorted(servers)
        assert servers[-1] > servers[0]

    def test_tighter_sla_never_needs_fewer_servers(self, sizer_setup):
        sizer, chip, workload = sizer_setup
        loose = sizer.size(chip, workload, target_qps=1_000_000.0, sla_p99_s=0.040)
        tight = sizer.size(chip, workload, target_qps=1_000_000.0, sla_p99_s=0.016)
        assert tight.servers >= loose.servers

    def test_tco_scales_with_cluster(self, sizer_setup):
        sizer, chip, workload = sizer_setup
        small = sizer.size(chip, workload, target_qps=200_000.0, sla_p99_s=0.025)
        large = sizer.size(chip, workload, target_qps=2_000_000.0, sla_p99_s=0.025)
        assert large.monthly_tco_usd > small.monthly_tco_usd
        assert large.racks >= small.racks
        breakdown = large.tco_breakdown
        assert breakdown.total == pytest.approx(large.monthly_tco_usd)

    def test_infeasible_sla_raises(self, sizer_setup):
        sizer, chip, workload = sizer_setup
        capacity = calibrate_chip(chip, workload)
        impossible = 0.5 * math.log(100.0) / capacity.unit_rate_rps
        with pytest.raises(SlaInfeasibleError, match="zero-load p99"):
            sizer.size(chip, workload, target_qps=1_000.0, sla_p99_s=impossible)


class TestCalibration:
    def test_rate_follows_ipc_clock_and_request_cost(self):
        from repro.experiments.service import build_service_chip
        from repro.perfmodel.analytic import AnalyticPerformanceModel

        suite = WorkloadSuite((WEB_SEARCH,))
        chip = build_service_chip("Scale-Out (OoO)", suite)
        model = AnalyticPerformanceModel()
        capacity = calibrate_chip(chip, WEB_SEARCH, model)
        estimate = model.estimate(WEB_SEARCH, chip.pod.config())
        expected = (
            estimate.per_core_ipc
            * chip.node.frequency_ghz
            * 1e9
            / WEB_SEARCH.instructions_per_request
        )
        assert capacity.unit_rate_rps == pytest.approx(expected)
        assert capacity.units_per_chip == (
            min(chip.pod.cores, WEB_SEARCH.max_cores) * chip.num_pods
        )
        assert capacity.chip_rate_rps == pytest.approx(
            capacity.units_per_chip * capacity.unit_rate_rps
        )

    def test_cheaper_requests_mean_higher_rate(self):
        from repro.experiments.service import build_service_chip

        suite = WorkloadSuite((WEB_SEARCH,))
        chip = build_service_chip("Scale-Out (OoO)", suite)
        cheap = WEB_SEARCH.with_overrides(instructions_per_request=1_000_000.0)
        expensive = WEB_SEARCH.with_overrides(instructions_per_request=8_000_000.0)
        assert (
            calibrate_chip(chip, cheap).unit_rate_rps
            > calibrate_chip(chip, expensive).unit_rate_rps
        )
