"""Smoke tests for the runnable examples (they must execute end to end)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "workload_characterization.py", "design_space_exploration.py"],
)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert len(output) > 100


def test_examples_exist():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart.py", "datacenter_tco_study.py", "nocout_pod_design.py",
            "workload_characterization.py", "design_space_exploration.py"}.issubset(scripts)


def test_design_space_exploration_reports_free_rerun(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "design_space_exploration.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "Pareto frontier" in output
    assert "evaluated=0" in output  # warm-cache re-exploration runs nothing
