"""Tests for the experiment runtime: specs, catalog, cache, and executor."""

import pytest

from repro.experiments import chapter2
from repro.experiments.registry import CATALOG, run_experiment
from repro.noc.simulation import PodNocStudy
from repro.runtime import (
    ExperimentResult,
    ExperimentSpec,
    ResultCache,
    SpecCatalog,
    SweepExecutor,
    UnknownExperimentError,
    canonicalize,
    result_key,
)
from repro.workloads import WorkloadSuite, get_workload


@pytest.fixture(scope="module")
def small_suite():
    return WorkloadSuite((get_workload("Web Search"), get_workload("Data Serving")))


class TestSpecCatalog:
    def test_lookup_by_id(self):
        spec = CATALOG.get("figure_4_6")
        assert spec.chapter == 4
        assert spec.kind == "figure"
        assert callable(spec.function)

    def test_version_salts_cache_token(self):
        # figure_4_3's rows gained a column; its bumped version must shed
        # cache entries written by older code, while version-1 specs keep
        # their historical tokens (existing caches stay valid).
        assert CATALOG.get("figure_4_3").cache_token.endswith("@v2")
        assert "@v" not in CATALOG.get("figure_4_6").cache_token

    def test_unknown_id_raises(self):
        with pytest.raises(UnknownExperimentError) as excinfo:
            CATALOG.get("figure_9_9")
        assert "figure_9_9" in str(excinfo.value)
        assert isinstance(excinfo.value, KeyError)  # backward compatible

    def test_lookup_by_chapter_and_kind(self):
        chapter4 = CATALOG.by_chapter(4)
        assert {s.experiment_id for s in chapter4} == {
            "figure_4_3", "figure_4_6", "figure_4_7", "figure_4_8", "table_4_1",
        }
        tables = CATALOG.by_kind("table")
        assert all(s.kind == "table" for s in tables)
        assert len(tables) == 9
        assert CATALOG.select(chapter=4, kind="table")[0].experiment_id == "table_4_1"

    def test_catalog_covers_every_chapter(self):
        # Chapters 2-6 are the paper's evaluation; 7 holds the service
        # studies, 8 the design-space explorations, 9 the fault studies, 10
        # the fleet-scale traffic studies, and 11 the technology-node family.
        assert CATALOG.chapters() == [2, 3, 4, 5, 6, 7, 8, 9, 10, 11]
        assert len(CATALOG) == 49
        assert len(CATALOG.by_kind("study")) == 15
        assert len(CATALOG.by_kind("explore")) == 5

    def test_duplicate_registration_rejected(self):
        spec = CATALOG.get("table_4_1")
        catalog = SpecCatalog([spec])
        with pytest.raises(ValueError):
            catalog.register(spec)

    def test_spec_parameter_defaults_and_overrides(self):
        spec = ExperimentSpec(
            experiment_id="table_2_1x",
            chapter=2,
            kind="table",
            function=chapter2.table_2_1_components,
            parameters={},
        )
        assert spec.merged_kwargs({"a": 1}) == {"a": 1}
        assert spec.run()  # defaults run cleanly

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec("x", 2, "plot", chapter2.table_2_1_components)


class TestResultCache:
    def test_hit_miss_determinism(self, small_suite):
        cache = ResultCache()
        first = run_experiment(
            "figure_2_2", cache=cache, suite=small_suite, llc_sizes_mb=(1, 4)
        )
        second = run_experiment(
            "figure_2_2", cache=cache, suite=small_suite, llc_sizes_mb=(1, 4)
        )
        assert first.cache_status == "miss"
        assert second.cache_status == "hit"
        assert first.rows == second.rows

    def test_different_kwargs_miss(self, small_suite):
        cache = ResultCache()
        a = run_experiment("figure_2_2", cache=cache, suite=small_suite, llc_sizes_mb=(1, 4))
        b = run_experiment("figure_2_2", cache=cache, suite=small_suite, llc_sizes_mb=(1, 8))
        assert a.cache_status == b.cache_status == "miss"
        assert a.rows != b.rows

    def test_same_seed_identical_rows_across_caches(self, small_suite):
        kwargs = dict(cores=4, instructions_per_core=1500, suite=small_suite, seed=11)
        a = run_experiment("figure_4_3", cache=ResultCache(), **kwargs)
        b = run_experiment("figure_4_3", cache=ResultCache(), **kwargs)
        assert a.cache_status == b.cache_status == "miss"
        assert a.rows == b.rows

    def test_use_cache_false_bypasses(self, small_suite):
        cache = ResultCache()
        run_experiment("figure_2_2", cache=cache, suite=small_suite, llc_sizes_mb=(1, 4))
        again = run_experiment(
            "figure_2_2", use_cache=False, cache=cache, suite=small_suite, llc_sizes_mb=(1, 4)
        )
        assert again.cache_status == "disabled"

    def test_aliased_figures_share_computation(self, small_suite):
        cache = ResultCache()
        first = run_experiment("figure_5_1", cache=cache, suite=small_suite)
        second = run_experiment("figure_5_2", cache=cache, suite=small_suite)
        assert first.cache_status == "miss"
        assert second.cache_status == "hit"
        assert first.rows == second.rows

    def test_cached_payload_isolated_from_mutation(self, small_suite):
        cache = ResultCache()
        first = run_experiment("figure_2_2", cache=cache, suite=small_suite, llc_sizes_mb=(1, 4))
        first.rows[0]["workload"] = "CLOBBERED"
        second = run_experiment("figure_2_2", cache=cache, suite=small_suite, llc_sizes_mb=(1, 4))
        assert second.rows[0]["workload"] != "CLOBBERED"

    def test_disk_tier_round_trip(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        cache.put("k1", [{"a": 1.5}])
        fresh = ResultCache(cache_dir=str(tmp_path))
        assert fresh.get("k1") == [{"a": 1.5}]
        assert "k1" in fresh
        fresh.clear()
        assert ResultCache(cache_dir=str(tmp_path)).get("k1") is None

    def test_disk_tier_pickles_non_json_payloads(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        payload = [{"value": {1, 2, 3}}]  # sets are not JSON-serializable
        cache.put("k2", payload)
        assert ResultCache(cache_dir=str(tmp_path)).get("k2") == payload


class TestCacheKeys:
    def test_executor_excluded_from_key(self):
        base = result_key("fn", {"seed": 1})
        with_executor = result_key("fn", {"seed": 1, "executor": SweepExecutor()})
        assert base == with_executor

    def test_kwargs_and_function_change_key(self):
        assert result_key("fn", {"seed": 1}) != result_key("fn", {"seed": 2})
        assert result_key("fn", {"seed": 1}) != result_key("other", {"seed": 1})

    def test_dataclasses_canonicalize_structurally(self, small_suite):
        other = WorkloadSuite((get_workload("Web Search"), get_workload("Data Serving")))
        assert canonicalize(small_suite) == canonicalize(other)
        assert result_key("fn", {"suite": small_suite}) == result_key("fn", {"suite": other})


class TestSweepExecutor:
    def test_serial_and_parallel_noc_study_identical(self, small_suite):
        study = PodNocStudy(duration_cycles=1200, suite=small_suite, seed=1)
        serial = study.evaluate(executor=SweepExecutor(mode="serial"))
        parallel = study.evaluate(executor=SweepExecutor(mode="process", max_workers=2))
        assert serial == parallel  # NocSimulationResult dataclasses compare by value
        assert {r.topology for r in serial} == {"mesh", "fbfly", "nocout"}

    def test_run_experiment_serial_parallel_identical(self, small_suite):
        kwargs = dict(duration_cycles=1200, suite=small_suite, seed=1, use_cache=False)
        serial = run_experiment("figure_4_6", executor=SweepExecutor(mode="serial"), **kwargs)
        parallel = run_experiment("figure_4_6", executor=SweepExecutor(mode="process"), **kwargs)
        assert serial.rows == parallel.rows

    def test_map_preserves_order(self):
        executor = SweepExecutor(mode="process", max_workers=2)
        assert executor.map(abs, [(-n,) for n in range(20)]) == list(range(20))

    def test_chunked_map_matches_serial(self):
        """Chunked process-pool fan-out returns the same ordered results."""
        points = [(-n,) for n in range(23)]
        serial = SweepExecutor(mode="serial").map(abs, points)
        for chunksize in (1, 4, 7, 50):
            chunked = SweepExecutor(
                mode="process", max_workers=2, chunksize=chunksize
            ).map(abs, points)
            assert chunked == serial

    def test_invalid_chunksize_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(chunksize=0)

    def test_bare_values_as_points(self):
        assert SweepExecutor(mode="serial").map(abs, [-1, -2]) == [1, 2]

    def test_auto_mode_thresholds(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        executor = SweepExecutor(min_parallel_points=4)
        assert executor.resolved_mode(2) == "serial"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "serial")
        assert SweepExecutor().resolved_mode(1000) == "serial"
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        assert SweepExecutor().resolved_mode(1000) == "process"
        # explicit modes are not overridden by the environment
        assert SweepExecutor(mode="serial").resolved_mode(1000) == "serial"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(mode="threads")


class TestExperimentResult:
    def test_envelope_fields_and_sequence_behaviour(self, small_suite):
        result = run_experiment(
            "figure_2_1", cache=ResultCache(), suite=small_suite
        )
        assert result.experiment_id == "figure_2_1"
        assert result.wall_time_s >= 0.0
        assert result.provenance["function"].endswith("figure_2_1_application_ipc")
        assert "cache_key" in result.provenance
        # sequence-style backward compatibility with the bare row list
        assert list(result) == result.rows
        assert len(result) == len(result.rows)
        assert result[0] == result.rows[0]

    def test_dict_data_normalizes_to_sweep_rows(self, small_suite):
        result = run_experiment("figure_3_5", cache=ResultCache(), suite=small_suite)
        assert isinstance(result.data, dict)
        assert result.rows == result.data["sweep"]

    def test_scalar_data_wraps_into_row(self):
        result = ExperimentResult(experiment_id="x", data=42)
        assert result.rows == [{"value": 42}]
