"""Tests for the ``python -m repro`` command line."""

import json

import pytest

from repro.runtime.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestList:
    def test_list_all(self, capsys):
        code, out, _ = run_cli(capsys, "list")
        assert code == 0
        assert "figure_4_6" in out and "table_3_2" in out
        assert "service_latency_sweep" in out
        assert "49 experiments" in out

    def test_list_filters(self, capsys):
        code, out, _ = run_cli(capsys, "list", "--chapter", "4", "--kind", "table")
        assert code == 0
        assert "table_4_1" in out
        assert "figure_4_6" not in out

    def test_list_studies(self, capsys):
        code, out, _ = run_cli(capsys, "list", "--kind", "study")
        assert code == 0
        assert "service_cluster_sizing" in out
        assert "table_4_1" not in out

    def test_list_no_match(self, capsys):
        code, _, err = run_cli(capsys, "list", "--chapter", "12")
        assert code == 1
        assert "no experiments" in err


class TestRun:
    def test_run_prints_table_and_provenance(self, capsys):
        code, out, _ = run_cli(capsys, "run", "table_4_1")
        assert code == 0
        assert "link_width_bits" in out
        assert "# table_4_1: cache=" in out

    def test_run_json(self, capsys):
        code, out, _ = run_cli(capsys, "run", "table_5_2", "--json", "--no-cache")
        assert code == 0
        payload = json.loads(out)
        assert payload["experiment"] == "table_5_2"
        assert any(row["parameter"] == "pue" for row in payload["rows"])

    def test_run_json_carries_full_envelope(self, capsys):
        code, out, _ = run_cli(capsys, "run", "table_5_2", "--json", "--no-cache")
        assert code == 0
        payload = json.loads(out)
        assert payload["cache_status"] == "disabled"
        assert payload["wall_time_s"] >= 0
        assert payload["provenance"]["function"].startswith("repro.experiments")
        assert "cache_key" in payload["provenance"]

    def test_run_json_cache_status_reflects_hits(self, capsys, tmp_path):
        argv = ("run", "table_5_2", "--cache-dir", str(tmp_path), "--json")
        _, first, _ = run_cli(capsys, *argv)
        _, second, _ = run_cli(capsys, *argv)
        assert json.loads(first)["cache_status"] == "miss"
        assert json.loads(second)["cache_status"] == "hit"

    def test_run_with_overrides(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "figure_2_2", "--set", "llc_sizes_mb=(1,4)", "--json", "--no-cache"
        )
        assert code == 0
        rows = json.loads(out)["rows"]
        assert set(rows[0]) == {"workload", "1MB", "4MB"}

    def test_run_unknown_id(self, capsys):
        code, _, err = run_cli(capsys, "run", "figure_9_9")
        assert code == 2
        assert "unknown experiment" in err

    def test_run_node_flag_restricts_family_study(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "node_family_table", "--node", "7nm", "--json", "--no-cache"
        )
        assert code == 0
        payload = json.loads(out)
        assert [row["node"] for row in payload["rows"]] == ["7nm"]
        assert payload["provenance"]["nodes"] == [
            {
                "node": "7nm",
                "calibrated": False,
                "extrapolated_rules": ["logic_area", "vdd", "logic_power", "wires"],
            }
        ]

    def test_run_node_flag_on_single_node_experiment(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "table_2_1", "--node", "20nm", "--json", "--no-cache"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["provenance"]["nodes"][0]["node"] == "20nm"
        assert payload["provenance"]["nodes"][0]["calibrated"] is True

    def test_run_node_flag_rejects_non_node_experiment(self, capsys):
        with pytest.raises(SystemExit, match="not node-parameterized"):
            run_cli(capsys, "run", "fleet_diurnal_day", "--node", "7nm")

    def test_run_disk_cache_hits_across_invocations(self, capsys, tmp_path):
        argv = ("run", "table_5_2", "--cache-dir", str(tmp_path))
        _, first, _ = run_cli(capsys, *argv)
        _, second, _ = run_cli(capsys, *argv)
        assert "cache=miss" in first
        assert "cache=hit" in second

    def test_run_identical_rows_to_library_call(self, capsys):
        from repro.experiments.registry import run_experiment

        code, out, _ = run_cli(capsys, "run", "table_4_1", "--json", "--no-cache")
        assert code == 0
        assert json.loads(out)["rows"] == run_experiment("table_4_1", use_cache=False).rows


class TestSweep:
    def test_sweep_cross_product(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "sweep", "figure_2_2",
            "--set", "llc_sizes_mb=(1,4)",
            "--set", "cores=2,4",
            "--json", "--no-cache",
        )
        assert code == 0
        payload = json.loads(out)
        assert sorted({row["cores"] for row in payload["rows"]}) == [2, 4]

    def test_sweep_rows_tagged_with_point(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "sweep", "figure_2_2", "--set", "llc_sizes_mb=(1,4),(1,8)", "--json", "--no-cache",
        )
        assert code == 0
        payload = json.loads(out)
        values = sorted(tuple(row["llc_sizes_mb"]) for row in payload["rows"])
        assert set(values) == {(1, 4), (1, 8)}

    def test_sweep_json_carries_point_envelopes(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "sweep", "figure_2_2", "--set", "cores=2,4", "--json", "--no-cache",
        )
        assert code == 0
        payload = json.loads(out)
        assert [p["point"] for p in payload["points"]] == [{"cores": 2}, {"cores": 4}]
        for point in payload["points"]:
            assert point["cache_status"] == "disabled"
            assert point["wall_time_s"] >= 0
            assert "cache_key" in point["provenance"]

    def test_sweep_requires_axis(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "sweep", "table_4_1")


class TestBench:
    def test_bench_selected(self, capsys):
        code, out, _ = run_cli(capsys, "bench", "table_2_1", "table_5_2")
        assert code == 0
        assert "wall_s" in out
        assert "table_2_1" in out and "table_5_2" in out

    def test_bench_json_writes_baseline_files(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "bench",
            "--json",
            "--bench-dir",
            str(tmp_path),
            "--set",
            "duration_cycles=600",
            "--set",
            "num_requests=1200",
            "--set",
            "rows=2000",
            "--set",
            "budget=24",
            "--set",
            "fleet_requests=20000",
            "--set",
            "fleet_reference_requests=20000",
        )
        assert code == 0
        envelope = json.loads(out)
        assert envelope["schema"] == 1
        by_id = {entry["experiment"]: entry for entry in envelope["entries"]}
        assert set(by_id) == {
            "figure_4_6",
            "service_latency_sweep",
            "fleet_scale_day",
            "pareto_kernel",
            "dse_search_ga",
            "dse_search_halving",
        }
        for entry in by_id.values():
            assert entry["units"] > 0
            assert entry["fastpath"]["wall_s"] > 0
            assert entry["reference"]["wall_s"] > 0
            assert entry["speedup"] > 0
        for experiment in ("figure_4_6", "service_latency_sweep"):
            assert by_id[experiment]["fastpath"]["cache_status"] == "disabled"
        for experiment in ("dse_search_ga", "dse_search_halving"):
            assert by_id[experiment]["fastpath"]["evaluations"] <= 24
            assert by_id[experiment]["evaluations_saved"] > 0
        for domain, experiment in (("noc", "figure_4_6"), ("service", "service_latency_sweep"),
                                   ("dse", "pareto_kernel")):
            payload = json.loads((tmp_path / f"BENCH_{domain}.json").read_text())
            assert payload["schema"] == 1
            assert payload["entries"][0]["experiment"] == experiment

    def test_bench_json_unregistered_id_times_fastpath_only(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "bench", "--json", "--bench-dir", str(tmp_path), "table_2_1"
        )
        assert code == 0
        envelope = json.loads(out)
        (entry,) = envelope["entries"]
        assert entry["experiment"] == "table_2_1"
        assert "reference" not in entry
        assert envelope["files"] == []


class TestExplore:
    ARGS = (
        "--set", "core_types=('ooo',)",
        "--set", "cores_per_pod=(8,16)",
        "--set", "llc_per_pod_mb=(4.0,)",
        "--set", "pods_per_chip=(1,2)",
    )

    def test_explore_prints_frontier_and_knee(self, capsys):
        code, out, _ = run_cli(capsys, "explore", "explore_pod_40nm",
                               "--no-cache", *self.ARGS)
        assert code == 0
        assert "Pareto frontier" in out
        assert "# knee [ooo]:" in out
        assert "# objectives: max performance_density" in out
        assert "candidates=4" in out

    def test_explore_json_envelope_carries_candidates_and_frontier(self, capsys):
        code, out, _ = run_cli(capsys, "explore", "explore_pod_40nm",
                               "--no-cache", "--json", *self.ARGS)
        assert code == 0
        envelope = json.loads(out)
        assert len(envelope["rows"]) == 4          # every evaluated candidate
        assert envelope["frontier"]                # the Pareto-optimal subset
        assert all(row["on_frontier"] for row in envelope["frontier"])
        assert envelope["stats"]["candidates"] == 4
        assert envelope["data"]["knees"]

    def test_explore_warm_disk_cache_hits(self, capsys, tmp_path):
        run_cli(capsys, "explore", "explore_pod_40nm", "--json",
                "--cache-dir", str(tmp_path), *self.ARGS)
        code, out, _ = run_cli(capsys, "explore", "explore_pod_40nm", "--json",
                               "--cache-dir", str(tmp_path), *self.ARGS)
        assert code == 0
        envelope = json.loads(out)
        assert envelope["cache_status"] == "hit"
        assert len(envelope["rows"]) == 4

    def test_explore_no_cache_reaches_the_evaluation_cache(self, capsys):
        # --no-cache must disable the per-candidate evaluation cache too:
        # a second run in the same process re-evaluates everything.
        for _ in range(2):
            code, out, _ = run_cli(capsys, "explore", "explore_pod_40nm",
                                   "--no-cache", "--json", *self.ARGS)
            assert code == 0
            stats = json.loads(out)["stats"]
            assert stats["evaluated"] == 4
            assert stats["cache_hits"] == 0

    def test_explore_rejects_non_explore_specs(self, capsys):
        with pytest.raises(SystemExit, match="not an exploration"):
            run_cli(capsys, "explore", "figure_4_6")

    def test_explore_strategy_flags_bound_the_search(self, capsys):
        code, out, _ = run_cli(capsys, "explore", "explore_pod_40nm",
                               "--strategy", "ga", "--budget", "16", "--seed", "3",
                               "--no-cache", "--json")
        assert code == 0
        stats = json.loads(out)["stats"]
        assert stats["strategy"] == "ga"
        assert stats["budget"] == 16
        assert stats["seed"] == 3
        assert stats["candidates"] <= 16

    def test_explore_halving_strategy_runs(self, capsys):
        code, out, _ = run_cli(capsys, "explore", "explore_pod_40nm",
                               "--strategy", "halving", "--budget", "12",
                               "--no-cache", "--json")
        assert code == 0
        stats = json.loads(out)["stats"]
        assert stats["strategy"] == "halving"
        assert stats["candidates"] <= 12

    def test_explore_same_seed_is_deterministic(self, capsys):
        outs = []
        for _ in range(2):
            code, out, _ = run_cli(capsys, "explore", "explore_pod_40nm",
                                   "--strategy", "ga", "--budget", "16",
                                   "--seed", "1", "--no-cache", "--json")
            assert code == 0
            envelope = json.loads(out)
            outs.append([row["candidate"] for row in envelope["rows"]])
        assert outs[0] == outs[1]

    def test_explore_pod_scale_rejects_exhaustive(self, capsys):
        with pytest.raises(ValueError, match="exhaustive"):
            run_cli(capsys, "explore", "explore_pod_scale",
                    "--strategy", "exhaustive", "--no-cache", "--json")

    def test_explore_rejects_unknown_strategy(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "explore", "explore_pod_40nm",
                    "--strategy", "annealing")


class TestReport:
    def test_report_markdown_to_stdout(self, capsys, tmp_path):
        code, out, _ = run_cli(capsys, "report", "--only", "chapter4",
                               "--cache-dir", str(tmp_path))
        assert code == 0
        assert out.startswith("# Reproduction report")
        assert "ch4-fbfly-beats-mesh" in out

    def test_report_out_writes_file_and_prints_summary(self, capsys, tmp_path):
        target = tmp_path / "REPORT.md"
        code, out, _ = run_cli(capsys, "report", "--only", "figure_4_7",
                               "--out", str(target), "--cache-dir", str(tmp_path))
        assert code == 0
        assert "# wrote" in out and "0 fail" in out
        assert target.read_text(encoding="utf-8").startswith("# Reproduction report")

    def test_report_json_envelope(self, capsys, tmp_path):
        code, out, _ = run_cli(capsys, "report", "--only", "chapter4", "--json",
                               "--cache-dir", str(tmp_path), "--serial")
        assert code == 0
        payload = json.loads(out)
        assert payload["summary"]["fail"] == 0
        assert payload["summary"]["claims"] == len(payload["claims"]) >= 5
        assert all(claim["chapter"] == 4 for claim in payload["claims"])

    def test_report_json_with_out_writes_file_and_keeps_stdout_pure(self, capsys, tmp_path):
        target = tmp_path / "REPORT.md"
        code, out, err = run_cli(capsys, "report", "--only", "figure_4_7",
                                 "--json", "--out", str(target),
                                 "--cache-dir", str(tmp_path))
        assert code == 0
        assert json.loads(out)["summary"]["fail"] == 0   # stdout is pure JSON
        assert "# wrote" in err
        assert target.read_text(encoding="utf-8").startswith("# Reproduction report")

    def test_report_svg_dir(self, capsys, tmp_path):
        code, _, _ = run_cli(capsys, "report", "--only", "figure_4_7",
                             "--svg-dir", str(tmp_path / "figs"),
                             "--cache-dir", str(tmp_path))
        assert code == 0
        svg = (tmp_path / "figs" / "report_chapter4.svg").read_text(encoding="utf-8")
        assert svg.startswith("<svg") and "ch4-nocout-cheapest" in svg

    def test_report_rejects_unknown_only_token(self, capsys):
        code, _, err = run_cli(capsys, "report", "--only", "chapter99-zzz")
        assert code == 2
        assert "matches no chapter" in err

    def test_report_no_cache_reaches_the_evaluation_cache(self, capsys):
        # --no-cache must also disable the explore studies' internal
        # per-candidate evaluation cache: both runs re-evaluate everything.
        for _ in range(2):
            code, out, _ = run_cli(capsys, "report", "--only", "explore_sla_sizing",
                                   "--no-cache", "--json")
            assert code == 0
            payload = json.loads(out)
            assert payload["summary"]["fail"] == 0
            assert {e["cache_status"] for e in payload["experiments"]} == {"disabled"}
