"""Tests for the Pod and ScaleOutChip abstractions."""

import pytest

from repro.core.chip import ScaleOutChip
from repro.core.pod import Pod
from repro.perfmodel.analytic import AnalyticPerformanceModel
from repro.technology.node import NODE_20NM, NODE_40NM
from repro.workloads.suite import WorkloadSuite
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def model():
    return AnalyticPerformanceModel()


@pytest.fixture(scope="module")
def small_suite():
    return WorkloadSuite((get_workload("Web Search"), get_workload("Data Serving")))


class TestPod:
    def test_paper_ooo_pod_physicals(self):
        # Section 3.4.2: a 16-core / 4 MB OoO pod occupies ~92 mm^2 and draws ~20 W.
        pod = Pod(cores=16, core_type="ooo", llc_capacity_mb=4, interconnect="crossbar")
        assert pod.area_mm2 == pytest.approx(92.0, rel=0.05)
        assert pod.power_w == pytest.approx(20.0, rel=0.15)

    def test_paper_inorder_pod_physicals(self):
        # Section 3.4.3: a 32-core / 2 MB in-order pod occupies ~52 mm^2, ~17 W.
        pod = Pod(cores=32, core_type="inorder", llc_capacity_mb=2, interconnect="crossbar")
        assert pod.area_mm2 == pytest.approx(52.0, rel=0.06)
        assert pod.power_w == pytest.approx(17.0, rel=0.2)

    def test_area_budget_components(self):
        pod = Pod(cores=8, core_type="ooo", llc_capacity_mb=2)
        budget = pod.area_budget()
        assert budget.cores_mm2 == pytest.approx(8 * 4.5)
        assert budget.llc_mm2 == pytest.approx(10.0)
        assert budget.interconnect_mm2 > 0
        assert budget.total_mm2 == pytest.approx(pod.area_mm2)

    def test_performance_and_density(self, model, small_suite):
        pod = Pod(cores=16, core_type="ooo", llc_capacity_mb=4)
        perf = pod.performance(model, small_suite)
        assert perf > 8.0  # 16 cores at well under 1 IPC each would be broken
        assert pod.performance_density(model, small_suite) == pytest.approx(perf / pod.area_mm2)

    def test_bandwidth_demand_positive(self, model, small_suite):
        pod = Pod(cores=16, core_type="ooo", llc_capacity_mb=4)
        assert pod.bandwidth_demand_gbps(model, small_suite) > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Pod(cores=0)
        with pytest.raises(ValueError):
            Pod(cores=4, llc_capacity_mb=0)
        with pytest.raises(KeyError):
            Pod(cores=4, core_type="gpu")
        with pytest.raises(KeyError):
            Pod(cores=4, interconnect="torus")

    def test_with_node_and_scaled(self):
        pod = Pod(cores=16, core_type="ooo", llc_capacity_mb=4)
        scaled = pod.scaled(2, 2.0)
        assert scaled.cores == 32 and scaled.llc_capacity_mb == 8.0
        retargeted = pod.with_node(NODE_20NM)
        assert retargeted.node is NODE_20NM
        assert retargeted.area_mm2 < pod.area_mm2

    def test_describe_mentions_key_parameters(self):
        pod = Pod(cores=16, core_type="ooo", llc_capacity_mb=4)
        text = pod.describe()
        assert "16" in text and "4" in text and "crossbar" in text


class TestScaleOutChip:
    def _pod(self) -> Pod:
        return Pod(cores=16, core_type="ooo", llc_capacity_mb=4, interconnect="crossbar")

    def test_totals(self):
        chip = ScaleOutChip(name="test", pod=self._pod(), num_pods=2, memory_channels=3)
        assert chip.total_cores == 32
        assert chip.total_llc_mb == 8.0
        assert chip.node is NODE_40NM

    def test_area_includes_interfaces_and_soc(self):
        chip = ScaleOutChip(name="test", pod=self._pod(), num_pods=2, memory_channels=3)
        assert chip.die_area_mm2 == pytest.approx(2 * self._pod().area_mm2 + 36.0 + 42.0, rel=0.01)

    def test_power_includes_interfaces_and_soc(self):
        chip = ScaleOutChip(name="test", pod=self._pod(), num_pods=2, memory_channels=3)
        expected = 2 * self._pod().power_w + 3 * 5.7 + 5.0
        assert chip.power_w == pytest.approx(expected, rel=0.01)

    def test_performance_scales_linearly_with_pods(self, model, small_suite):
        one = ScaleOutChip(name="one", pod=self._pod(), num_pods=1, memory_channels=2)
        two = ScaleOutChip(name="two", pod=self._pod(), num_pods=2, memory_channels=3)
        assert two.performance(model, small_suite) == pytest.approx(
            2 * one.performance(model, small_suite)
        )

    def test_cached_pod_performance_used(self, small_suite):
        chip = ScaleOutChip(name="c", pod=self._pod(), num_pods=2, memory_channels=3, pod_performance=10.0)
        assert chip.performance() == pytest.approx(20.0)
        assert chip.with_pod_performance(5.0).performance() == pytest.approx(10.0)

    def test_constraint_checks(self):
        chip = ScaleOutChip(name="c", pod=self._pod(), num_pods=2, memory_channels=3)
        assert chip.satisfies()
        huge = ScaleOutChip(name="huge", pod=self._pod(), num_pods=10, memory_channels=6)
        assert not huge.satisfies()
        assert huge.limiting_constraint() in ("area", "power", "bandwidth")

    def test_summary_keys(self, model, small_suite):
        chip = ScaleOutChip(name="c", pod=self._pod(), num_pods=2, memory_channels=3)
        summary = chip.summary(model, small_suite)
        for key in ("design", "cores", "llc_mb", "die_area_mm2", "power_w", "performance_density"):
            assert key in summary

    def test_validation(self):
        with pytest.raises(ValueError):
            ScaleOutChip(name="bad", pod=self._pod(), num_pods=0, memory_channels=1)
        with pytest.raises(ValueError):
            ScaleOutChip(name="bad", pod=self._pod(), num_pods=1, memory_channels=0)
        with pytest.raises(ValueError):
            ScaleOutChip(name="bad", pod=self._pod(), num_pods=1, memory_channels=1, num_dies=0)

    def test_multi_die_footprint_smaller(self):
        chip_2d = ScaleOutChip(name="2d", pod=self._pod(), num_pods=2, memory_channels=3)
        chip_3d = ScaleOutChip(name="3d", pod=self._pod(), num_pods=2, memory_channels=3, num_dies=2)
        assert chip_3d.die_area_mm2 < chip_2d.die_area_mm2
