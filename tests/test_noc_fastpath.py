"""Fastpath/reference equivalence: the SoA kernel must match the object path
bit for bit -- per-packet latencies and every derived statistic -- on all three
topologies and across link widths."""

import numpy as np
import pytest

from repro.noc.fastpath import PacketBatch, sequential_sum
from repro.noc.network import NocConfig, NocNetwork
from repro.noc.packet import MessageClass, Packet
from repro.noc.simulation import PodNocStudy
from repro.noc.topology import build_flattened_butterfly, build_mesh, build_nocout
from repro.noc.traffic import BilateralTrafficGenerator
from repro.workloads import WorkloadSuite, get_workload

TOPOLOGY_BUILDERS = {
    "mesh": build_mesh,
    "fbfly": build_flattened_butterfly,
    "nocout": build_nocout,
}
DURATION = 1_200
ACTIVE_CORES = 32


def _traffic(topology, seed=3):
    generator = BilateralTrafficGenerator(
        topology, get_workload("Web Search"), per_core_ipc=0.5, seed=seed
    )
    return generator


@pytest.mark.parametrize("topology_name", ["mesh", "fbfly", "nocout"])
@pytest.mark.parametrize("link_width_bits", [128, 32])
class TestFastpathEquivalence:
    def test_exact_equality_against_reference(self, topology_name, link_width_bits):
        """Arrival times, hops, and all derived stats are exactly equal."""
        build = TOPOLOGY_BUILDERS[topology_name]
        config = NocConfig(link_width_bits=link_width_bits)

        reference = NocNetwork(build(64), config, use_fastpath=False)
        packets = _traffic(reference.topology).generate(DURATION, ACTIVE_CORES)
        reference.run(packets)
        reference_arrivals = {p.packet_id: p.arrival_time for p in reference.delivered}
        reference_hops = {p.packet_id: p.hops for p in reference.delivered}

        fast = NocNetwork(build(64), config, use_fastpath=True)
        batch = _traffic(fast.topology).generate_batch(DURATION, ACTIVE_CORES)
        result = fast.run_batch(batch)
        fast_arrivals = dict(
            zip(batch.packet_id.tolist(), result.arrival_time.tolist())
        )
        fast_hops = dict(zip(batch.packet_id.tolist(), result.hops.tolist()))

        assert fast_arrivals == reference_arrivals  # exact float equality
        assert fast_hops == reference_hops
        assert fast.average_latency() == reference.average_latency()
        assert fast.average_latency_by_class() == reference.average_latency_by_class()
        assert fast.average_hops() == reference.average_hops()
        assert fast.total_flit_hops() == reference.total_flit_hops()
        assert fast.max_link_utilization(DURATION) == reference.max_link_utilization(
            DURATION
        )

    def test_send_matches_batch_kernel(self, topology_name, link_width_bits):
        """Per-packet ``send`` on the fast path equals the batch kernel."""
        build = TOPOLOGY_BUILDERS[topology_name]
        config = NocConfig(link_width_bits=link_width_bits)

        batch_network = NocNetwork(build(64), config, use_fastpath=True)
        batch = _traffic(batch_network.topology).generate_batch(DURATION, ACTIVE_CORES)
        result = batch_network.run_batch(batch)

        send_network = NocNetwork(build(64), config, use_fastpath=True)
        packets = _traffic(send_network.topology).generate(DURATION, ACTIVE_CORES)
        send_network.run(packets)

        by_id = {p.packet_id: p for p in send_network.delivered}
        for pid, arrival in zip(batch.packet_id.tolist(), result.arrival_time.tolist()):
            assert by_id[pid].arrival_time == arrival
        assert send_network.average_latency() == batch_network.average_latency()
        assert send_network.total_flit_hops() == batch_network.total_flit_hops()


class TestPodStudyEquivalence:
    def test_full_study_results_identical(self):
        """`PodNocStudy` rows are exactly equal with and without the fast path."""
        suite = WorkloadSuite((get_workload("Web Search"), get_workload("Data Serving")))
        fast = PodNocStudy(duration_cycles=1_000, suite=suite, seed=2, use_fastpath=True)
        reference = PodNocStudy(
            duration_cycles=1_000, suite=suite, seed=2, use_fastpath=False
        )
        assert fast.evaluate() == reference.evaluate()

    def test_escape_hatch_selects_reference_structures(self):
        network = NocNetwork(build_mesh(16), use_fastpath=False)
        assert network._links is not None and network._compiled is None
        network = NocNetwork(build_mesh(16))
        assert network._links is None and network._compiled is not None


class TestPacketBatch:
    def test_generate_batch_is_deterministic(self):
        mesh = build_mesh(64)
        a = _traffic(mesh, seed=7).generate_batch(DURATION, ACTIVE_CORES)
        b = _traffic(mesh, seed=7).generate_batch(DURATION, ACTIVE_CORES)
        for column in ("injection_time", "source", "destination", "class_code", "flits", "packet_id"):
            assert np.array_equal(getattr(a, column), getattr(b, column))

    def test_different_seeds_differ(self):
        mesh = build_mesh(64)
        a = _traffic(mesh, seed=7).generate_batch(DURATION, ACTIVE_CORES)
        b = _traffic(mesh, seed=8).generate_batch(DURATION, ACTIVE_CORES)
        assert not np.array_equal(a.injection_time, b.injection_time)

    def test_object_adapter_roundtrip(self):
        """generate() == generate_batch().to_packets(), field for field."""
        mesh = build_mesh(64)
        batch = _traffic(mesh).generate_batch(DURATION, ACTIVE_CORES)
        packets = _traffic(mesh).generate(DURATION, ACTIVE_CORES)
        assert len(batch) == len(packets)
        for packet, (src, dst, t, pid) in zip(
            packets,
            zip(
                batch.source.tolist(),
                batch.destination.tolist(),
                batch.injection_time.tolist(),
                batch.packet_id.tolist(),
            ),
        ):
            assert (packet.source, packet.destination) == (src, dst)
            assert packet.injection_time == t
            assert packet.packet_id == pid
            assert isinstance(packet.source, int)

        rebuilt = PacketBatch.from_packets(packets)
        assert np.array_equal(rebuilt.injection_time, batch.injection_time)
        assert np.array_equal(rebuilt.class_code, batch.class_code)

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError, match="mismatched length"):
            PacketBatch(
                injection_time=np.zeros(3),
                source=np.zeros(2, dtype=np.int64),
                destination=np.zeros(3, dtype=np.int64),
                class_code=np.zeros(3, dtype=np.int64),
                flits=np.zeros(3, dtype=np.int64),
                packet_id=np.arange(3),
            )


class TestSequentialSum:
    def test_matches_python_sum_bitwise(self):
        rng = np.random.default_rng(5)
        values = rng.uniform(0, 20_000, 10_001)
        running = 0.0
        for value in values.tolist():
            running += value
        assert sequential_sum(values) == running

    def test_empty_is_zero(self):
        assert sequential_sum(np.array([])) == 0.0


class TestMixedUsage:
    def test_multi_batch_stats_stay_bit_identical(self):
        """Running sums seeded across batches keep exact equality with the
        reference path's per-packet accumulation (regression: a per-batch
        subtotal added in one float op diverged in the last ulps)."""
        config = NocConfig()
        fast = NocNetwork(build_mesh(64), config, use_fastpath=True)
        reference = NocNetwork(build_mesh(64), config, use_fastpath=False)
        for seed in (3, 4, 5):
            batch = _traffic(fast.topology, seed=seed).generate_batch(600, ACTIVE_CORES)
            fast.run_batch(batch)
            reference.run(
                _traffic(reference.topology, seed=seed).generate(600, ACTIVE_CORES)
            )
        assert fast.average_latency() == reference.average_latency()
        assert fast.average_latency_by_class() == reference.average_latency_by_class()
        assert fast.total_flit_hops() == reference.total_flit_hops()

    def test_send_after_batch_sees_link_state(self):
        """Contention persists across run_batch and send on the fast path."""
        mesh = build_mesh(16)
        network = NocNetwork(mesh)
        first = Packet(0, 3, MessageClass.RESPONSE, injection_time=0.0, packet_id=0)
        second = Packet(0, 3, MessageClass.RESPONSE, injection_time=0.0, packet_id=1)
        network.run_batch(PacketBatch.from_packets([first]))
        network.send(second)
        assert second.latency > mesh.zero_load_latency(0, 3, flits=second.flits)
