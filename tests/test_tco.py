"""Tests for the TCO models and the datacenter study (Chapter 5)."""

import pytest

from repro.core.designs import build_conventional, build_scale_out, build_single_pod, build_tiled
from repro.core.pod import Pod
from repro.core.chip import ScaleOutChip
from repro.tco.datacenter import DatacenterDesign, evaluate_datacenter
from repro.tco.model import TcoModel
from repro.tco.params import DEFAULT_TCO_PARAMETERS, TcoParameters
from repro.tco.pricing import ChipPricingModel, KNOWN_MARKET_PRICES
from repro.tco.server import ServerConfig, ServerDesign
from repro.technology.node import NODE_40NM
from repro.workloads import WorkloadSuite, get_workload


@pytest.fixture(scope="module")
def small_suite():
    return WorkloadSuite((get_workload("Web Search"), get_workload("Data Serving")))


@pytest.fixture(scope="module")
def chips(small_suite):
    return {
        "conventional": build_conventional(NODE_40NM, suite=small_suite),
        "scale_out_ooo": build_scale_out("ooo", NODE_40NM, suite=small_suite),
        "single_pod_ooo": build_single_pod("ooo", NODE_40NM, suite=small_suite),
        "tiled_ooo": build_tiled("ooo", NODE_40NM, suite=small_suite),
    }


class TestTcoParameters:
    def test_table_5_2_defaults(self):
        p = DEFAULT_TCO_PARAMETERS
        assert p.infrastructure_cost_per_m2 == 3000.0
        assert p.cooling_power_equipment_cost_per_w == 12.5
        assert p.pue == pytest.approx(1.3)
        assert p.spue == pytest.approx(1.3)
        assert p.dram_cost_per_gb == 25.0
        assert p.rack_units == 42
        assert p.rack_area_m2 == pytest.approx(0.6 * 2.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            TcoParameters(rack_power_limit_w=0)
        with pytest.raises(ValueError):
            TcoParameters(pue=0.8)


class TestPricing:
    def test_known_price_used_for_conventional(self):
        pricing = ChipPricingModel()
        assert pricing.price("Conventional", 276.0) == KNOWN_MARKET_PRICES["Conventional"]

    def test_large_die_costs_modestly_more(self):
        # Section 5.2.2: doubling the die adds only ~15% (about $50) at 200K units.
        pricing = ChipPricingModel()
        small = pricing.price("1Pod (OoO)", 140.0)
        large = pricing.price("Scale-Out (OoO)", 260.0)
        assert large > small
        assert (large - small) / small < 0.35

    def test_price_falls_with_volume(self):
        pricing = ChipPricingModel()
        prices = pricing.price_vs_volume("Scale-Out (OoO)", 260.0)
        volumes = sorted(prices)
        assert all(prices[a] >= prices[b] for a, b in zip(volumes[:-1], volumes[1:]))

    def test_price_in_paper_band_at_200k(self):
        pricing = ChipPricingModel()
        assert 250.0 < pricing.price("Scale-Out (OoO)", 260.0) < 550.0
        assert 200.0 < pricing.price("1Pod (OoO)", 150.0) < 450.0

    def test_yield_and_dies_per_wafer(self):
        pricing = ChipPricingModel()
        assert pricing.die_yield(100.0) > pricing.die_yield(300.0)
        assert pricing.dies_per_wafer(100.0) > pricing.dies_per_wafer(300.0)
        with pytest.raises(ValueError):
            pricing.dies_per_wafer(0.0)
        with pytest.raises(ValueError):
            pricing.estimate("x", 100.0, volume_units=0)


class TestServerDesign:
    def _server(self, chip, performance=20.0, memory_gb=64):
        return ServerDesign(
            chip=chip, chip_performance=performance, config=ServerConfig(memory_gb=memory_gb)
        )

    def test_low_power_chips_get_more_sockets(self, chips):
        low_power = self._server(chips["single_pod_ooo"])
        high_power = self._server(chips["conventional"])
        assert low_power.sockets >= high_power.sockets
        assert high_power.sockets >= 1

    def test_more_memory_means_fewer_processor_watts(self, chips):
        small = self._server(chips["scale_out_ooo"], memory_gb=32)
        large = self._server(chips["scale_out_ooo"], memory_gb=128)
        assert large.non_processor_power_w > small.non_processor_power_w
        assert large.sockets <= small.sockets

    def test_server_power_includes_spue(self, chips):
        server = self._server(chips["scale_out_ooo"])
        it_power = server.non_processor_power_w + server.sockets * chips["scale_out_ooo"].power_w
        assert server.server_power_w == pytest.approx(it_power * 1.3)

    def test_servers_per_rack_bounded(self, chips):
        server = self._server(chips["conventional"])
        assert 1 <= server.servers_per_rack() <= 42

    def test_hardware_cost_components(self, chips):
        server = self._server(chips["scale_out_ooo"])
        cost = server.hardware_cost(processor_price=370.0)
        assert cost > 64 * 25 + 330 + 2 * 180

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(memory_gb=0)


class TestTcoModel:
    def test_breakdown_positive_and_sums(self, chips):
        server = ServerDesign(chip=chips["scale_out_ooo"], chip_performance=20.0)
        breakdown = TcoModel().monthly_tco(server, num_servers=1000, num_racks=30, processor_price=370.0)
        as_dict = breakdown.as_dict()
        assert all(v > 0 for v in as_dict.values())
        assert as_dict["total"] == pytest.approx(
            breakdown.infrastructure + breakdown.hardware + breakdown.power + breakdown.maintenance
        )

    def test_hardware_and_power_dominate(self, chips):
        # Section 5.1: server acquisition and power are the two largest categories.
        server = ServerDesign(chip=chips["scale_out_ooo"], chip_performance=20.0)
        b = TcoModel().monthly_tco(server, num_servers=5000, num_racks=150, processor_price=370.0)
        assert b.hardware > b.maintenance
        assert b.hardware + b.power > b.infrastructure

    def test_invalid_counts(self, chips):
        server = ServerDesign(chip=chips["scale_out_ooo"], chip_performance=20.0)
        with pytest.raises(ValueError):
            TcoModel().monthly_tco(server, 0, 1, 100.0)


class TestDatacenter:
    def test_evaluate_fields(self, chips, small_suite):
        result = DatacenterDesign(suite=small_suite).evaluate(chips["scale_out_ooo"])
        assert result.racks > 100
        assert result.servers == result.racks * result.servers_per_rack
        assert result.performance > 0
        assert result.monthly_tco > 0
        assert result.performance_per_tco > 0
        assert result.performance_per_watt > 0
        assert result.total_power_w <= 20_000_000 * 1.35

    def test_figure_5_1_scale_out_beats_conventional(self, chips, small_suite):
        datacenter = DatacenterDesign(suite=small_suite)
        comparison = datacenter.compare(
            [chips["conventional"], chips["tiled_ooo"], chips["scale_out_ooo"]]
        )
        assert comparison["Scale-Out (OoO)"]["performance"] > 2.5
        assert comparison["Tiled (OoO)"]["performance"] > 1.5
        assert comparison["Conventional"]["performance"] == pytest.approx(1.0)

    def test_figure_5_2_tco_differences_modest(self, chips, small_suite):
        # Chapter 5: TCO differences across designs are far smaller than
        # performance differences.
        datacenter = DatacenterDesign(suite=small_suite)
        comparison = datacenter.compare([chips["conventional"], chips["scale_out_ooo"]])
        assert 0.6 < comparison["Scale-Out (OoO)"]["tco"] < 1.4

    def test_figure_5_3_memory_capacity_trend(self, chips, small_suite):
        # More memory per server lowers performance/TCO (Section 5.3.2).
        datacenter = DatacenterDesign(suite=small_suite)
        small = datacenter.evaluate(chips["scale_out_ooo"], memory_gb=32)
        large = datacenter.evaluate(chips["scale_out_ooo"], memory_gb=128)
        assert small.performance_per_tco > large.performance_per_tco

    def test_figure_5_5_price_sensitivity_smaller_for_big_chips(self, chips, small_suite):
        # Small dies need more sockets per server, so their TCO reacts more to price.
        datacenter = DatacenterDesign(suite=small_suite)
        small_chip = chips["single_pod_ooo"]
        big_chip = chips["scale_out_ooo"]
        def sensitivity(chip):
            cheap = datacenter.evaluate(chip, processor_price=200.0).performance_per_tco
            pricey = datacenter.evaluate(chip, processor_price=800.0).performance_per_tco
            return cheap / pricey
        assert sensitivity(small_chip) >= sensitivity(big_chip) * 0.95

    def test_convenience_wrapper(self, chips):
        result = evaluate_datacenter(chips["single_pod_ooo"])
        assert result.design.startswith("1Pod")
