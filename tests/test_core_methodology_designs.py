"""Tests for the scale-out design methodology and the standard design builders."""

import pytest

from repro.core.comparison import compare_designs
from repro.core.designs import (
    DesignSizer,
    DesignSpec,
    build_conventional,
    build_ideal,
    build_llc_optimal_tiled,
    build_llc_optimal_tiled_ir,
    build_scale_out,
    build_single_pod,
    build_tiled,
)
from repro.core.methodology import ScaleOutDesignMethodology, design_scale_out_processor
from repro.perfmodel.analytic import AnalyticPerformanceModel
from repro.technology.node import NODE_20NM, NODE_40NM
from repro.workloads import default_suite


@pytest.fixture(scope="module")
def model():
    return AnalyticPerformanceModel()


@pytest.fixture(scope="module")
def suite():
    return default_suite()


@pytest.fixture(scope="module")
def methodology(model, suite):
    return ScaleOutDesignMethodology(NODE_40NM, model, suite)


class TestMethodology:
    def test_sweep_covers_design_space(self, methodology):
        points = methodology.sweep_pods("ooo", core_counts=(4, 8, 16), llc_sizes_mb=(2.0, 4.0))
        assert len(points) == 6
        assert all(p.performance_density > 0 for p in points)

    def test_pd_peak_in_paper_range_ooo(self, methodology):
        # Figure 3.5: the OoO crossbar peak sits at 16-32 cores with 2-4 MB.
        best = max(
            methodology.sweep_pods("ooo", interconnects=("crossbar",)),
            key=lambda p: p.performance_density,
        )
        assert best.pod.cores in (16, 32, 64)
        assert best.pod.llc_capacity_mb in (2.0, 4.0, 8.0)

    def test_selected_pod_prefers_fewer_cores(self, methodology):
        selected = methodology.pd_optimal_pod("ooo")
        peak = max(
            methodology.sweep_pods("ooo", interconnects=("crossbar",)),
            key=lambda p: p.performance_density,
        )
        assert selected.pod.cores <= peak.pod.cores
        assert selected.performance_density >= 0.97 * peak.performance_density

    def test_max_cores_cap_respected(self, methodology):
        selected = methodology.pd_optimal_pod("ooo", max_cores=8)
        assert selected.pod.cores <= 8

    def test_compose_chip_respects_constraints(self, methodology):
        point = methodology.pd_optimal_pod("ooo")
        chip = methodology.compose_chip(point.pod)
        assert chip.satisfies()
        assert chip.num_pods >= 1
        assert chip.memory_channels <= 6

    def test_design_ooo_matches_paper_shape(self, methodology):
        # Table 3.2: the 40nm OoO Scale-Out chip integrates ~32 cores over 1-2 pods.
        chip = methodology.design("ooo")
        assert 16 <= chip.total_cores <= 48
        assert chip.satisfies()

    def test_design_inorder_matches_paper_shape(self, methodology):
        # Table 3.2: the 40nm in-order Scale-Out chip reaches ~96 cores over ~3 pods.
        chip = methodology.design("inorder")
        assert 64 <= chip.total_cores <= 128
        assert chip.num_pods >= 2
        assert chip.satisfies()

    def test_convenience_entry_point(self):
        chip = design_scale_out_processor("ooo", NODE_40NM)
        assert chip.name.startswith("Scale-Out")

    def test_invalid_tolerance(self, methodology):
        with pytest.raises(ValueError):
            methodology.pd_optimal_pod("ooo", complexity_tolerance=1.5)


class TestDesignBuilders:
    def test_conventional_matches_paper(self, model, suite):
        chip = build_conventional(NODE_40NM, model, suite)
        # Table 2.3: 6 conventional cores, 12 MB LLC, power-limited, ~276 mm^2.
        assert chip.total_cores == 6
        assert chip.total_llc_mb == pytest.approx(12.0)
        assert chip.memory_channels == 2
        assert chip.die_area_mm2 == pytest.approx(276.0, rel=0.02)
        assert chip.power_w <= 95.0

    def test_tiled_ooo_matches_paper(self, model, suite):
        chip = build_tiled("ooo", NODE_40NM, model, suite)
        # Table 2.3: ~20 cores with 1 MB per tile.
        assert 16 <= chip.total_cores <= 25
        assert chip.total_llc_mb == pytest.approx(chip.total_cores * 1.0)

    def test_tiled_inorder_keeps_area_ratio(self, model, suite):
        chip = build_tiled("inorder", NODE_40NM, model, suite)
        assert 56 <= chip.total_cores <= 81
        per_tile_mb = chip.total_llc_mb / chip.total_cores
        assert per_tile_mb == pytest.approx(1.0 * 1.3 / 4.5, rel=0.01)

    def test_llc_optimal_small_cache(self, model, suite):
        chip = build_llc_optimal_tiled("ooo", NODE_40NM, model, suite)
        assert chip.total_llc_mb / chip.total_cores == pytest.approx(0.25)
        assert chip.total_cores > build_tiled("ooo", NODE_40NM, model, suite).total_cores

    def test_ir_variant_flags_set(self, model, suite):
        chip = build_llc_optimal_tiled_ir("ooo", NODE_40NM, model, suite)
        assert chip.pod.instruction_replication
        assert chip.pod.offchip_traffic_factor > 1.0

    def test_ideal_uses_llc_optimal_budget(self, model, suite):
        ideal = build_ideal("ooo", NODE_40NM, model, suite)
        reference = build_llc_optimal_tiled("ooo", NODE_40NM, model, suite)
        assert ideal.total_cores == reference.total_cores
        assert ideal.total_llc_mb == pytest.approx(reference.total_llc_mb)
        assert ideal.pod.interconnect == "ideal"

    def test_single_pod_smaller_than_scale_out(self, model, suite):
        single = build_single_pod("ooo", NODE_40NM, model, suite)
        multi = build_scale_out("ooo", NODE_40NM, model, suite)
        assert single.num_pods == 1
        assert single.die_area_mm2 < multi.die_area_mm2 + 1e-6
        assert single.total_cores <= multi.total_cores

    def test_sizer_rejects_impossible_spec(self, model, suite):
        sizer = DesignSizer(NODE_40NM, model, suite)
        spec = DesignSpec(name="huge", core_type="conventional", interconnect="crossbar", llc_mb_per_core=100.0)
        with pytest.raises(ValueError):
            sizer.size(spec)

    def test_spec_llc_rules(self):
        per_core = DesignSpec(name="a", core_type="ooo", interconnect="mesh", llc_mb_per_core=0.5)
        fixed = DesignSpec(name="b", core_type="ooo", interconnect="mesh", llc_total_mb=8.0)
        assert per_core.llc_capacity(8) == 4.0
        assert fixed.llc_capacity(8) == 8.0
        with pytest.raises(ValueError):
            DesignSpec(name="c", core_type="ooo", interconnect="mesh").llc_capacity(8)


class TestDesignComparison:
    @pytest.fixture(scope="class")
    def comparison(self, model, suite):
        designs = [
            build_conventional(NODE_40NM, model, suite),
            build_tiled("ooo", NODE_40NM, model, suite),
            build_llc_optimal_tiled("ooo", NODE_40NM, model, suite),
            build_scale_out("ooo", NODE_40NM, model, suite),
            build_ideal("ooo", NODE_40NM, model, suite),
        ]
        return compare_designs(designs, model, suite)

    def test_headline_ordering(self, comparison):
        # Table 3.2 ordering: conventional < tiled < LLC-optimal < Scale-Out <= ideal.
        pd = {row.design: row.performance_density for row in comparison.rows}
        assert pd["Conventional"] < pd["Tiled (OoO)"]
        assert pd["Tiled (OoO)"] < pd["LLC-Optimal Tiled (OoO)"]
        assert pd["LLC-Optimal Tiled (OoO)"] <= pd["Scale-Out (OoO)"] * 1.02
        assert pd["Scale-Out (OoO)"] <= pd["Ideal (OoO)"] * 1.02

    def test_headline_ratios_match_paper_band(self, comparison):
        # Paper: Scale-Out improves PD by ~3.5x over conventional, ~1.5x over tiled,
        # and lands within ~10% of the ideal processor at 40nm.
        assert 2.5 <= comparison.pd_ratio("Scale-Out (OoO)", "Conventional") <= 4.5
        assert 1.2 <= comparison.pd_ratio("Scale-Out (OoO)", "Tiled (OoO)") <= 2.0
        assert comparison.pd_ratio("Ideal (OoO)", "Scale-Out (OoO)") <= 1.15

    def test_row_lookup_and_dicts(self, comparison):
        assert comparison.row("conventional").design == "Conventional"
        assert comparison.row("Scale-Out").pods >= 1
        with pytest.raises(KeyError):
            comparison.row("nonexistent")
        assert len(comparison.as_dicts()) == len(comparison.rows)

    def test_perf_per_watt_improves(self, comparison):
        assert comparison.perf_per_watt_ratio("Scale-Out (OoO)", "Conventional") > 2.0
