"""Documentation integrity: markdown links resolve, doc contents stay current.

This is the CI markdown link checker: every relative link (and intra-page
anchor) in ``README.md`` and ``docs/`` must point at a real file or heading,
and the prose must not drift from the code (command listings, catalog size,
committed benchmark baselines).
"""

import json
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([REPO / "README.md", *(REPO / "docs").glob("*.md")])

_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#+\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def _anchor(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def _links(path: Path):
    text = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return _LINK.findall(text)


def _anchors(path: Path):
    text = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return {_anchor(m) for m in _HEADING.findall(text)}


def test_doc_files_exist():
    assert (REPO / "README.md").exists(), "the repo must have a top-level README"
    names = {p.name for p in DOC_FILES}
    assert {"architecture.md", "dse.md", "running.md", "performance.md",
            "service.md", "report.md", "REPORT.md"} <= names


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_markdown_links_resolve(doc):
    broken = []
    for link in _links(doc):
        if link.startswith(("http://", "https://", "mailto:")):
            continue  # external links are not checked offline
        target, _, fragment = link.partition("#")
        target_path = (doc.parent / target).resolve() if target else doc
        if target and not target_path.exists():
            broken.append(f"{doc.name}: {link} (missing file)")
            continue
        if fragment and target_path.suffix == ".md":
            if fragment not in _anchors(target_path):
                broken.append(f"{doc.name}: {link} (missing anchor)")
    assert not broken, "broken links:\n" + "\n".join(broken)


def test_architecture_is_cross_linked():
    for name in ("running.md", "performance.md", "service.md", "dse.md"):
        text = (REPO / "docs" / name).read_text(encoding="utf-8")
        assert "architecture.md" in text, f"docs/{name} must link the architecture page"


def test_running_doc_lists_every_cli_command():
    from repro.runtime.cli import build_parser

    text = (REPO / "docs" / "running.md").read_text(encoding="utf-8")
    subcommands = {"list", "run", "sweep", "explore", "bench", "report", "stats"}
    # Keep this set in sync with the parser itself.
    parser_commands = set()
    for action in build_parser()._subparsers._group_actions:  # noqa: SLF001
        parser_commands.update(action.choices)
    assert subcommands == parser_commands
    for command in sorted(subcommands):
        # Require a real mention: a code-formatted invocation or a fenced
        # `python -m repro <command>` line, not an incidental prose substring.
        assert re.search(
            rf"`(python -m repro )?{command}`|python -m repro {command}\b",
            text, re.MULTILINE,
        ), f"docs/running.md does not mention the `{command}` command"


def test_report_md_matches_regeneration():
    """The committed reproduction report regenerates byte-for-byte.

    Renders the report twice against one shared cache: the first pass runs
    every claimed experiment (cold), the second is served entirely from the
    warm cache.  Both renderings must be identical to each other and to the
    committed ``docs/REPORT.md``, and no claim may grade ``fail``.
    """
    from repro.report import Grade, ReportValidator, render_markdown
    from repro.runtime.cache import ResultCache

    validator = ReportValidator(cache=ResultCache())
    cold_run = validator.validate()
    warm_run = validator.validate()
    assert {check.cache_status for check in warm_run.experiments} == {"hit"}
    cold, warm = render_markdown(cold_run), render_markdown(warm_run)
    assert cold == warm, "report rendering is not cache-stable"
    committed = (REPO / "docs" / "REPORT.md").read_text(encoding="utf-8")
    assert committed == cold, (
        "docs/REPORT.md drifted from regeneration; run "
        "`python -m repro report --out docs/REPORT.md` and commit the result"
    )
    assert cold_run.count(Grade.FAIL) == 0
    assert len(cold_run.graded) >= 20


def test_readme_mentions_catalog_and_tier1_command():
    from repro.experiments.registry import CATALOG

    text = (REPO / "README.md").read_text(encoding="utf-8")
    assert "python -m pytest" in text
    assert "python -m repro" in text
    assert str(len(CATALOG)) in text, "README experiment count drifted from the catalog"
    for command in ("list", "run", "sweep", "bench", "explore"):
        assert command in text


def test_performance_doc_mentions_both_committed_baselines():
    text = (REPO / "docs" / "performance.md").read_text(encoding="utf-8")
    schema_section = text[text.index("## The benchmark baseline"):]
    for name in ("BENCH_noc.json", "BENCH_service.json", "BENCH_dse.json"):
        assert name in schema_section
        baseline = json.loads((REPO / name).read_text(encoding="utf-8"))
        for entry in baseline["entries"]:
            speedup = f"{entry['speedup']:.1f}x"
            assert speedup in schema_section, (
                f"docs/performance.md must mention the committed {name} "
                f"baseline speedup ({speedup})"
            )
