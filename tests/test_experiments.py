"""Integration tests: the experiment harness regenerates every table and figure."""

import pytest

from repro.experiments import chapter2, chapter3, chapter4, chapter5, chapter6
from repro.experiments.formatting import format_table
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.workloads import WorkloadSuite, get_workload


@pytest.fixture(scope="module")
def small_suite():
    return WorkloadSuite((get_workload("Web Search"), get_workload("Data Serving")))


class TestRegistry:
    def test_every_paper_experiment_registered(self):
        expected = {
            "figure_2_1", "figure_2_2", "figure_2_3", "table_2_1", "table_2_3", "table_2_4",
            "figure_3_3", "figure_3_4", "figure_3_5", "figure_3_6", "table_3_2",
            "figure_4_3", "figure_4_6", "figure_4_7", "figure_4_8", "table_4_1",
            "table_5_1", "table_5_2", "figure_5_1", "figure_5_2", "figure_5_3",
            "figure_5_4", "figure_5_5", "table_6_1", "table_6_2",
            "figure_6_4", "figure_6_5", "figure_6_6", "figure_6_7",
        }
        assert expected.issubset(set(EXPERIMENTS))

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("figure_9_9")


class TestChapter2:
    def test_figure_2_1(self, small_suite):
        rows = chapter2.figure_2_1_application_ipc(suite=small_suite)
        assert {r["workload"] for r in rows} == set(small_suite.names())
        assert all(0.4 < r["application_ipc"] < 2.5 for r in rows)

    def test_figure_2_2_normalized_to_one(self, small_suite):
        rows = chapter2.figure_2_2_llc_sensitivity(suite=small_suite, llc_sizes_mb=(1, 4, 16))
        for row in rows:
            assert row["1MB"] == pytest.approx(1.0)
            assert row["4MB"] >= 1.0

    def test_figure_2_3_mesh_below_ideal(self, small_suite):
        rows = chapter2.figure_2_3_core_scaling(core_counts=(1, 16, 64), suite=small_suite)
        last = rows[-1]
        assert last["mesh_per_core"] < last["ideal_per_core"]

    def test_table_2_1_contents(self):
        rows = chapter2.table_2_1_components()
        names = {r["component"] for r in rows}
        assert "ooo_core" in names and "soc_misc" in names

    def test_table_2_3_has_all_designs(self, small_suite):
        rows = chapter2.table_2_3_designs_40nm(suite=small_suite)
        designs = {r["design"] for r in rows}
        assert "Conventional" in designs
        assert any("Ideal" in d for d in designs)
        assert not any("Scale-Out" in d for d in designs)


class TestChapter3:
    def test_figure_3_3_small(self, small_suite):
        rows = chapter3.figure_3_3_model_validation(
            core_counts=(2, 4), interconnects=("crossbar",),
            instructions_per_core=2500, suite=small_suite,
        )
        mean_row = rows[-1]
        assert mean_row["workload"] == "MEAN"
        assert mean_row["relative_error"] < 0.6

    def test_figure_3_5_selection(self, small_suite):
        data = chapter3.figure_3_5_pod_selection(suite=small_suite)
        assert data["selected_cores"] in (8, 16, 32, 64)
        assert data["selected_llc_mb"] in (1.0, 2.0, 4.0, 8.0)
        assert len(data["sweep"]) > 10

    def test_table_3_2_scale_out_included(self, small_suite):
        rows = chapter3.table_3_2_design_comparison(suite=small_suite)
        assert any("Scale-Out" in r["design"] for r in rows)


class TestChapter4:
    def test_figure_4_3(self, small_suite):
        rows = chapter4.figure_4_3_snoop_fraction(
            cores=8, instructions_per_core=2500, suite=small_suite
        )
        assert rows[-1]["workload"] == "MEAN"
        assert 0.0 <= rows[-1]["snoop_fraction_percent"] < 10.0

    def test_figure_4_7(self):
        rows = chapter4.figure_4_7_noc_area()
        by_name = {r["topology"]: r["total_mm2"] for r in rows}
        assert by_name["nocout"] < by_name["mesh"] < by_name["fbfly"]

    def test_table_4_1(self):
        rows = chapter4.table_4_1_parameters()
        params = {r["parameter"]: r["value"] for r in rows}
        assert params["cores"] == 64
        assert params["llc_mb"] == 8.0


class TestChapter5:
    def test_table_5_1(self, small_suite):
        rows = chapter5.table_5_1_chip_characteristics(suite=small_suite)
        assert len(rows) == 7
        assert all(r["price_usd"] > 0 for r in rows)

    def test_figures_5_1_5_2(self, small_suite):
        rows = chapter5.figures_5_1_5_2_performance_and_tco(suite=small_suite)
        by_design = {r["design"]: r for r in rows}
        assert by_design["Conventional"]["normalized_performance"] == pytest.approx(1.0)
        assert by_design["Scale-Out (In-order)"]["normalized_performance"] > 2.0

    def test_table_5_2(self):
        rows = chapter5.table_5_2_parameters()
        assert {"parameter", "value"} == set(rows[0].keys())


class TestChapter6:
    def test_table_6_1(self):
        rows = chapter6.table_6_1_components()
        assert any(r["component"] == "ddr3_interface" or r["component"] == "ddr4_interface" for r in rows)

    def test_figure_6_5(self, small_suite):
        rows = chapter6.figure_6_5_strategies_ooo(suite=small_suite)
        assert any(r["strategy"] == "fixed-pod" for r in rows)
        assert any(r["strategy"] == "fixed-distance" for r in rows)
        assert all(r["performance_density"] > 0 for r in rows)


class TestServiceStudies:
    def test_service_specs_registered(self):
        from repro.experiments.registry import CATALOG

        assert {
            "service_latency_sweep",
            "service_policy_comparison",
            "service_cluster_sizing",
        }.issubset(set(EXPERIMENTS))
        for spec in CATALOG.by_kind("study"):
            assert spec.chapter in (7, 9, 10, 11)

    def test_latency_sweep_p99_monotone_and_diverging(self, small_suite):
        from repro.experiments import service

        rows = service.service_latency_sweep(
            utilizations=(0.5, 0.9, 1.5),
            num_servers=2,
            num_requests=3_000,
            suite=small_suite,
        )
        p99s = [r["p99_ms"] for r in rows]
        assert p99s == sorted(p99s)
        assert p99s[-1] > 1.5 * p99s[0]
        assert rows[-1]["mmk_p99_ms"] is None  # past saturation

    def test_policy_comparison_covers_policies(self, small_suite):
        from repro.experiments import service

        rows = service.service_policy_comparison(
            num_servers=2, num_requests=1_500, suite=small_suite
        )
        assert {r["policy"] for r in rows} == {"random", "round_robin", "po2", "jsq"}
        by_policy = {r["policy"]: r for r in rows}
        assert by_policy["jsq"]["mean_ms"] <= by_policy["random"]["mean_ms"]

    def test_cluster_sizing_ranks_designs(self, small_suite):
        from repro.experiments import service

        rows = service.service_cluster_sizing(
            target_qps=500_000.0, suite=small_suite
        )
        by_design = {r["design"]: r for r in rows}
        assert set(by_design) == {
            "Conventional", "Scale-Out (OoO)", "Scale-Out 3D (OoO)",
        }
        for row in rows:
            assert row["p99_ms"] <= row["sla_p99_ms"]
            assert row["monthly_tco_usd"] > 0
        # The scale-out designs serve the target with far fewer servers.
        assert by_design["Scale-Out (OoO)"]["servers"] < by_design["Conventional"]["servers"]

    def test_unknown_design_rejected(self):
        from repro.experiments.service import build_service_chip

        with pytest.raises(ValueError, match="unknown service design"):
            build_service_chip("Tiled")


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no data)" in format_table([], title="Empty")
