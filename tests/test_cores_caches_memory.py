"""Tests for core models, cache models, and the memory system."""

import pytest
from hypothesis import given, strategies as st

from repro.caches.bank import CacheBank
from repro.caches.hierarchy import CONVENTIONAL_L1, DEFAULT_L1, L1Config
from repro.caches.nuca import NucaLLC
from repro.cores.models import CONVENTIONAL, CORE_TYPES, INORDER, OOO, core_model
from repro.memory.dram import DDR3_1667, DDR4_2133, DramChannel, channel_for_standard
from repro.memory.provisioning import channels_required, demand_gbps, worst_case_demand_gbps
from repro.technology.node import NODE_20NM, NODE_40NM
from repro.workloads import default_suite, get_workload


class TestCoreModels:
    def test_three_core_types(self):
        assert set(CORE_TYPES) == {"conventional", "ooo", "inorder"}

    def test_table_2_2_structure(self):
        assert CONVENTIONAL.issue_width == 4
        assert CONVENTIONAL.rob_entries == 128
        assert CONVENTIONAL.l1i_kb == 64
        assert OOO.issue_width == 3
        assert OOO.rob_entries == 60
        assert OOO.lsq_entries == 16
        assert INORDER.issue_width == 2
        assert not INORDER.out_of_order

    def test_areas_match_component_catalog(self):
        assert CONVENTIONAL.area_mm2(NODE_40NM) == pytest.approx(25.0)
        assert OOO.area_mm2(NODE_40NM) == pytest.approx(4.5)
        assert INORDER.area_mm2(NODE_40NM) == pytest.approx(1.3)
        assert OOO.power_w(NODE_40NM) == pytest.approx(1.0)

    def test_core_model_lookup(self):
        assert core_model("OoO") is OOO
        assert core_model("in-order") is INORDER
        assert core_model(CONVENTIONAL) is CONVENTIONAL
        with pytest.raises(KeyError):
            core_model("atom")

    def test_outstanding_misses_reflect_microarchitecture(self):
        assert OOO.max_outstanding_misses > INORDER.max_outstanding_misses
        assert CONVENTIONAL.max_outstanding_misses >= OOO.max_outstanding_misses


class TestL1Config:
    def test_default_and_conventional(self):
        assert DEFAULT_L1.icache_kb == 32
        assert DEFAULT_L1.latency_cycles == 2
        assert CONVENTIONAL_L1.icache_kb == 64
        assert CONVENTIONAL_L1.latency_cycles == 3

    def test_set_counts(self):
        assert DEFAULT_L1.icache_sets() == 32 * 1024 // 64 // 2
        assert CONVENTIONAL_L1.dcache_sets() == 64 * 1024 // 64 // 8

    def test_validation(self):
        with pytest.raises(ValueError):
            L1Config(0, 32, 2, 2, 2, 1, 32)
        with pytest.raises(ValueError):
            L1Config(32, 32, 2, 2, 0, 1, 32)


class TestCacheBank:
    def test_geometry(self):
        bank = CacheBank(capacity_mb=1.0)
        assert bank.num_lines == 1024 * 1024 // 64
        assert bank.num_sets == bank.num_lines // 16

    def test_latency_and_area_grow_with_capacity(self):
        small, big = CacheBank(0.5), CacheBank(8.0)
        assert big.access_latency_cycles >= small.access_latency_cycles
        assert big.area_mm2 > small.area_mm2
        assert big.power_w > small.power_w

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheBank(capacity_mb=0)
        with pytest.raises(ValueError):
            CacheBank(capacity_mb=1, associativity=0)


class TestNucaLLC:
    def test_dancehall_banking_rule(self):
        assert NucaLLC.banks_for_cores(16) == 4
        assert NucaLLC.banks_for_cores(3) == 1
        llc = NucaLLC.dancehall(4.0, cores=16)
        assert llc.num_banks == 4
        assert llc.bank_capacity_mb == pytest.approx(1.0)

    def test_tiled_banking(self):
        llc = NucaLLC.tiled(20.0, tiles=20)
        assert llc.num_banks == 20

    def test_area_is_sum_of_banks(self):
        llc = NucaLLC(total_capacity_mb=8.0, num_banks=8)
        assert llc.area_mm2 == pytest.approx(8 * llc.bank().area_mm2)

    def test_contention_model(self):
        llc = NucaLLC(total_capacity_mb=4.0, num_banks=4)
        assert llc.queueing_delay_cycles(0.0) == 0.0
        assert llc.queueing_delay_cycles(4.0) > llc.queueing_delay_cycles(0.5)
        assert llc.bank_utilization(100.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NucaLLC(total_capacity_mb=0, num_banks=1)
        with pytest.raises(ValueError):
            NucaLLC(total_capacity_mb=1, num_banks=0)
        with pytest.raises(ValueError):
            NucaLLC.banks_for_cores(0)

    @given(st.integers(min_value=1, max_value=512))
    def test_banks_never_exceed_cores(self, cores):
        assert 1 <= NucaLLC.banks_for_cores(cores) <= cores


class TestDram:
    def test_paper_channel_parameters(self):
        assert DDR3_1667.peak_bandwidth_gbps == pytest.approx(12.8)
        assert DDR3_1667.useful_bandwidth_gbps == pytest.approx(9.0, rel=0.01)
        assert DDR3_1667.power_w == pytest.approx(5.7)
        assert DDR4_2133.peak_bandwidth_gbps == pytest.approx(2 * 12.8)

    def test_access_latency_45ns(self):
        assert DDR3_1667.access_latency_cycles(NODE_40NM) == 90

    def test_channel_for_standard(self):
        assert channel_for_standard("DDR3") is DDR3_1667
        assert channel_for_standard("ddr4-2133") is DDR4_2133
        with pytest.raises(KeyError):
            channel_for_standard("HBM")

    def test_queueing_grows_with_demand(self):
        low = DDR3_1667.queueing_delay_cycles(1.0, NODE_40NM)
        high = DDR3_1667.queueing_delay_cycles(8.5, NODE_40NM)
        assert high > low >= 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DramChannel(standard="x", peak_bandwidth_gbps=0)
        with pytest.raises(ValueError):
            DramChannel(standard="x", peak_bandwidth_gbps=10, effective_utilization=1.5)


class TestProvisioning:
    def test_channels_required(self):
        assert channels_required(0.0, DDR3_1667) == 1
        assert channels_required(8.9, DDR3_1667) == 1
        assert channels_required(9.1, DDR3_1667) == 2
        assert channels_required(44.0, DDR3_1667) == 5
        with pytest.raises(ValueError):
            channels_required(-1.0, DDR3_1667)

    def test_demand_scales_with_cores_and_ipc(self):
        workload = get_workload("Web Search")
        base = demand_gbps(workload, 16, 4.0, 0.8, NODE_40NM)
        # Twice the cores demand at least twice the bandwidth (capacity sharing
        # adds a little more on top).
        doubled = demand_gbps(workload, 32, 4.0, 0.8, NODE_40NM)
        assert 2 * base <= doubled <= 2.6 * base
        assert demand_gbps(workload, 16, 4.0, 1.6, NODE_40NM) == pytest.approx(2 * base)

    def test_worst_case_demand(self):
        suite = default_suite()
        ipc = {w.name: 0.8 for w in suite}
        worst = worst_case_demand_gbps(suite, 16, 4.0, ipc, NODE_40NM)
        assert worst.gbps >= demand_gbps(get_workload("Web Search"), 16, 4.0, 0.8, NODE_40NM)
        assert worst.workload in suite.names()

    def test_pod_level_demand_in_paper_range(self):
        # The paper reports ~9.4 GB/s for a 16-core OoO pod with a 4 MB LLC; the
        # reproduction should land within a factor of ~2 of that figure.
        suite = default_suite()
        ipc = {w.name: 0.8 for w in suite}
        worst = worst_case_demand_gbps(suite, 16, 4.0, ipc, NODE_40NM)
        assert 5.0 < worst.gbps < 25.0
