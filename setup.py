"""Setup shim: metadata lives in pyproject.toml (PEP 621).

The shim exists so that editable installs work in offline environments whose
setuptools lacks the `wheel` package required by PEP 660 editable wheels.
"""

from setuptools import setup

setup()
