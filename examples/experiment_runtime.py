"""Driving the experiment runtime programmatically.

Shows the spec catalog (lookup by chapter/kind), the result envelope returned
by ``run_experiment`` (rows + provenance + wall time + cache status), the
shared result cache (the second run is free, and Figures 5.1/5.2 share one
computation), and the parallel sweep executor.

The same operations are available from the command line::

    python -m repro list --chapter 4
    python -m repro run figure_4_6 --parallel
    python -m repro sweep figure_2_2 --set "llc_sizes_mb=(1,4),(1,8)"
    python -m repro bench

Run with ``python examples/experiment_runtime.py``.
"""

from repro.experiments.formatting import format_table
from repro.experiments.registry import CATALOG, run_experiment
from repro.runtime import SweepExecutor


def main() -> None:
    print("Chapter 4 artifacts in the catalog:")
    for spec in CATALOG.by_chapter(4):
        print(f"  {spec.experiment_id:12s} [{spec.kind}]  {spec.produces}")
    print()

    # First run computes (fanning the NoC sweep over a process pool), the
    # second is served from the in-process result cache.
    executor = SweepExecutor(mode="process")
    first = run_experiment("figure_4_6", duration_cycles=3000, executor=executor)
    again = run_experiment("figure_4_6", duration_cycles=3000, executor=executor)
    print(format_table(first.rows, title="Figure 4.6 (normalized to mesh)"))
    print(f"first run:  cache={first.cache_status} wall={first.wall_time_s:.2f}s")
    print(f"second run: cache={again.cache_status} wall={again.wall_time_s:.2f}s")
    print()

    # Figures 5.1 and 5.2 are two views of one computation; the cache runs the
    # shared function once.
    perf = run_experiment("figure_5_1")
    tco = run_experiment("figure_5_2")
    print(f"figure_5_1: cache={perf.cache_status}, figure_5_2: cache={tco.cache_status}")


if __name__ == "__main__":
    main()
