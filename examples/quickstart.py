"""Quickstart: design a Scale-Out Processor and compare it to the baselines.

Run with ``python examples/quickstart.py``.
"""

from repro import design_scale_out_processor
from repro.core.comparison import compare_designs
from repro.core.designs import build_conventional, build_tiled
from repro.experiments.formatting import format_table
from repro.technology.node import NODE_40NM


def main() -> None:
    # Step 1: run the scale-out design methodology for out-of-order cores.
    chip = design_scale_out_processor(core_type="ooo", node=NODE_40NM)
    print("Scale-Out Processor produced by the methodology:")
    for key, value in chip.summary().items():
        print(f"  {key:22s} {value}")
    print()
    print(f"Pod organization: {chip.pod.describe()}")
    print()

    # Step 2: compare it against a conventional and a tiled server processor.
    designs = [build_conventional(NODE_40NM), build_tiled("ooo", NODE_40NM), chip]
    comparison = compare_designs(designs)
    print(format_table(comparison.as_dicts(), title="Design comparison at 40nm"))
    print()
    print(
        "Performance density vs conventional: "
        f"{comparison.pd_ratio(chip.name, 'Conventional'):.1f}x"
    )
    print(
        "Performance density vs tiled:        "
        f"{comparison.pd_ratio(chip.name, 'Tiled (OoO)'):.1f}x"
    )


if __name__ == "__main__":
    main()
