"""Design-space exploration tour: spaces, constraints, frontiers, knees.

Builds a small 40 nm pod design space, explores it through the chapter models,
and prints every candidate, the Pareto frontier, and the knee-point selection
-- then shows how the content-addressed cache makes a re-exploration free.

Run with:  PYTHONPATH=src python examples/design_space_exploration.py
"""

from repro.dse import (
    Axis,
    Constraint,
    DesignSpace,
    Explorer,
    Objective,
    frontier_2d,
)
from repro.experiments.formatting import format_table
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor


def main() -> None:
    """Run the exploration tour end to end."""
    space = DesignSpace(
        axes=(
            Axis("core_type", ("ooo", "inorder")),
            Axis("cores_per_pod", (16, 32)),
            Axis("llc_per_pod_mb", (2.0, 4.0)),
            Axis("pods_per_chip", (1, 2, 3)),
            Axis("node", ("40nm",)),
            Axis("interconnect", ("crossbar",)),
        ),
        # Parameter constraints prune before any model runs...
        constraints=(
            Constraint("max_96_cores", lambda c: c["cores_per_pod"] * c["pods_per_chip"] <= 96),
        ),
        # ...metric constraints prune after (area/power/bandwidth budgets).
        metric_constraints=(
            Constraint("fits_chip_budgets", lambda m: bool(m["fits_budgets"])),
        ),
    )
    objectives = (
        Objective.maximize("performance_density"),
        Objective.maximize("performance_per_watt"),
        Objective.maximize("performance"),
    )
    cache = ResultCache()
    explorer = Explorer(
        space,
        objectives,
        evaluator="chip",
        group_by="core_type",
        executor=SweepExecutor(mode="serial"),
        cache=cache,
    )

    result = explorer.explore()
    print(f"space: {space.size} raw candidates, "
          f"{result.stats['candidates']} after parameter constraints, "
          f"{result.stats['feasible']} within the chip budgets\n")

    columns = ("candidate", "die_area_mm2", "power_w", "performance",
               "performance_density", "performance_per_watt", "on_frontier")
    print(format_table(
        [{k: row[k] for k in columns} for row in result.rows],
        title="every evaluated candidate",
    ))

    print()
    print(format_table(result.frontier, title="Pareto frontier (per core family)"))
    for label, knee in sorted(result.knees.items()):
        print(f"knee [{label}]: {knee['candidate']}")

    # A 2-D slice of the same rows: the density-vs-efficiency trade-off curve.
    curve = frontier_2d(
        [row for row in result.rows if row["feasible"]],
        Objective.maximize("performance_density"),
        Objective.maximize("performance_per_watt"),
    )
    print()
    print(format_table(
        [{k: row[k] for k in ("candidate", "performance_density", "performance_per_watt")}
         for row in curve],
        title="2-D frontier: density vs perf/watt",
    ))

    # Re-exploring the same space is free: every evaluation is served from the
    # content-addressed cache, so nothing runs through the models again.
    rerun = Explorer(
        space, objectives, evaluator="chip", group_by="core_type", cache=cache
    ).explore()
    print(f"\nwarm-cache re-exploration: evaluated={rerun.stats['evaluated']} "
          f"cache_hits={rerun.stats['cache_hits']}")


if __name__ == "__main__":
    main()
