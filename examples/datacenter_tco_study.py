"""Datacenter efficiency study (the Chapter 5 scenario).

Evaluates a 20 MW datacenter built from different server chips -- conventional,
tiled, single-pod, and multi-pod Scale-Out Processors -- and reports datacenter
performance, monthly TCO, performance/TCO, and performance/Watt for a Web-scale
online-service deployment with 64 GB of memory per 1U server.

Run with ``python examples/datacenter_tco_study.py``.
"""

from repro.core.designs import (
    build_conventional,
    build_scale_out,
    build_single_pod,
    build_tiled,
)
from repro.experiments.formatting import format_table
from repro.tco.datacenter import DatacenterDesign
from repro.technology.node import NODE_40NM


def main() -> None:
    chips = [
        build_conventional(NODE_40NM),
        build_tiled("ooo", NODE_40NM),
        build_single_pod("ooo", NODE_40NM),
        build_scale_out("ooo", NODE_40NM),
        build_tiled("inorder", NODE_40NM),
        build_single_pod("inorder", NODE_40NM),
        build_scale_out("inorder", NODE_40NM),
    ]
    datacenter = DatacenterDesign()

    rows = []
    for memory_gb in (32, 64, 128):
        for chip in chips:
            result = datacenter.evaluate(chip, memory_gb=memory_gb)
            rows.append(
                {
                    "design": chip.name,
                    "memory_gb": memory_gb,
                    "sockets/1U": result.sockets_per_server,
                    "servers": result.servers,
                    "perf (norm)": round(result.performance, 0),
                    "TCO $/month": round(result.monthly_tco, 0),
                    "perf/TCO": round(result.performance_per_tco, 2),
                    "perf/W": round(result.performance_per_watt, 4),
                }
            )
    print(format_table(rows, title="Datacenter efficiency for different server chips"))

    baseline = datacenter.evaluate(chips[0], memory_gb=64)
    best = datacenter.evaluate(chips[-1], memory_gb=64)
    print()
    print(
        "Scale-Out (in-order) vs Conventional at 64 GB/server: "
        f"{best.performance / baseline.performance:.1f}x performance, "
        f"{best.performance_per_tco / baseline.performance_per_tco:.1f}x performance/TCO"
    )


if __name__ == "__main__":
    main()
