"""Designing the interconnect of a many-core pod (the Chapter 4 scenario).

Compares a mesh, a flattened butterfly, and NOC-Out for a 64-core pod running a
Web Search / Data Serving mix: average network latency, full-system performance,
and NoC area, including the area-normalized comparison.

Run with ``python examples/nocout_pod_design.py``.
"""

import statistics

from repro.experiments.formatting import format_table
from repro.noc.simulation import PodNocStudy
from repro.runtime import SweepExecutor


def main() -> None:
    study = PodNocStudy(duration_cycles=4000)
    # Fan the 21 (topology x workload) simulation points over a process pool;
    # results are identical to SweepExecutor(mode="serial"), just faster.
    executor = SweepExecutor(mode="process")

    print("NoC area breakdown (64-core pod, 128-bit links, 32nm):")
    area_rows = []
    for name, breakdown in study.area_breakdowns().items():
        row = {"topology": name}
        row.update({k: round(v, 2) for k, v in breakdown.as_dict().items()})
        area_rows.append(row)
    print(format_table(area_rows))
    print()

    results = study.evaluate(executor=executor)
    normalized = study.normalized_performance(results)
    perf_rows = []
    for topology, per_workload in normalized.items():
        perf_rows.append(
            {
                "topology": topology,
                "geomean vs mesh": round(
                    statistics.geometric_mean(list(per_workload.values())), 3
                ),
            }
        )
    print(format_table(perf_rows, title="System performance normalized to the mesh"))
    print()

    widths = study.area_normalized_widths()
    fixed = study.normalized_performance(
        study.evaluate(link_width_bits_by_topology=widths, executor=executor)
    )
    fixed_rows = []
    for topology, per_workload in fixed.items():
        fixed_rows.append(
            {
                "topology": topology,
                "link width (bits)": widths[topology],
                "geomean vs mesh": round(
                    statistics.geometric_mean(list(per_workload.values())), 3
                ),
            }
        )
    print(format_table(fixed_rows, title="Performance under a fixed NoC area budget"))


if __name__ == "__main__":
    main()
