"""Characterizing a new scale-out workload (the Chapter 2 scenario).

Shows how to describe a custom workload profile, check its LLC capacity
sensitivity, validate the analytic model against the cycle-level simulator, and
find the PD-optimal pod for it.

Run with ``python examples/workload_characterization.py``.
"""

from repro.core.methodology import ScaleOutDesignMethodology
from repro.experiments.formatting import format_table
from repro.perfmodel.analytic import AnalyticPerformanceModel, SystemConfig
from repro.sim.system import simulate_system
from repro.workloads.cloudsuite import _behaviors  # reuse the calibrated core constants
from repro.workloads.missrate import CaptureCurve, MissRatioCurve
from repro.workloads.profile import WorkloadProfile
from repro.workloads.suite import WorkloadSuite


def build_custom_workload() -> WorkloadProfile:
    """An in-memory key-value store: huge dataset, modest instruction footprint."""
    return WorkloadProfile(
        name="KV Store",
        l1i_mpki=18.0,
        l1d_mpki=26.0,
        llc_curve=MissRatioCurve(
            floor_mpki=4.0,
            capturable_mpki=5.0,
            capture=CaptureCurve(half_capture_mb=1.2, exponent=1.5),
            instruction_mpki=5.0,
            instruction_capture=CaptureCurve(half_capture_mb=0.4, exponent=2.2),
        ),
        core_behavior=_behaviors(compute_factor=0.9),
        snoop_fraction=0.02,
        max_cores=64,
        instruction_footprint_kb=640,
        dataset_footprint_mb=4096,
    )


def main() -> None:
    workload = build_custom_workload()
    model = AnalyticPerformanceModel()

    rows = []
    for llc_mb in (1, 2, 4, 8, 16):
        config = SystemConfig(cores=4, core_type="ooo", llc_capacity_mb=llc_mb, interconnect="crossbar")
        estimate = model.estimate(workload, config)
        rows.append(
            {
                "llc_mb": llc_mb,
                "per_core_ipc": round(estimate.per_core_ipc, 3),
                "llc_mpki": round(estimate.llc_mpki, 2),
                "offchip_gbps": round(estimate.offchip_bandwidth_gbps, 1),
            }
        )
    print(format_table(rows, title="KV Store: LLC capacity sensitivity (4 OoO cores)"))
    print()

    config = SystemConfig(cores=8, core_type="ooo", llc_capacity_mb=4, interconnect="crossbar")
    sim = simulate_system(workload, config, instructions_per_core=8000, seed=5)
    predicted = model.estimate(workload, config)
    print(
        "Model vs simulation at 8 cores / 4 MB: "
        f"model {predicted.aggregate_ipc:.2f} IPC, simulated {sim.aggregate_ipc:.2f} IPC"
    )
    print()

    methodology = ScaleOutDesignMethodology(suite=WorkloadSuite((workload,)))
    selected = methodology.pd_optimal_pod(core_type="ooo")
    chip = methodology.design(core_type="ooo", name="Scale-Out (KV Store)")
    print(f"PD-optimal pod for KV Store: {selected.pod.describe()}")
    print(f"Composed chip: {chip.summary()}")


if __name__ == "__main__":
    main()
