"""Ensure the src/ layout is importable even without an installed package.

Offline environments without the `wheel` package cannot complete a PEP 660
editable install; adding src/ to sys.path keeps the test and benchmark suites
runnable regardless of how (or whether) the package was installed.
"""

import os
import sys
import tempfile

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

# Keep test-run ledger appends out of the repo's .repro/ directory; tests that
# care about the ledger location override REPRO_LEDGER_DIR themselves.
os.environ.setdefault("REPRO_LEDGER_DIR", tempfile.mkdtemp(prefix="repro-ledger-"))
